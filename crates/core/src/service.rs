//! The concurrent multi-session service layer: one shared [`Icdb`] served
//! to many clients at once.
//!
//! [`IcdbService`] wraps the knowledge base, cell library, generation
//! cache and relational catalog behind three cooperating mechanisms,
//! replacing the single big `RwLock` of earlier revisions:
//!
//! * **Epoch snapshots (lock-free reads).** Warm *and cold*
//!   `Icdb::prepare_payload` runs, knowledge-only CQL queries
//!   (`component_query`, `cache_query`, …) and [`Session::explore`]
//!   sweeps are answered from an `Icdb::read_snapshot`: a cloned view
//!   of the knowledge base, cell library and tool registry sharing the
//!   (internally synchronized) generation cache. Snapshot freshness is
//!   tracked by two atomic version mirrors — the moment knowledge
//!   acquisition bumps the library or cell-library version, the cached
//!   snapshot is stale and the next epoch read rebuilds it under a brief
//!   shared lock. In steady state these paths take *no* service lock at
//!   all, and because the cache is shared, a pipeline warmed through a
//!   snapshot serves the subsequent locked install.
//! * **Per-namespace shards (concurrent writers).** Mutations are
//!   serialized per namespace shard (`crate::space::ShardSet`), not
//!   globally: the shard lock is held across *enqueue → apply →
//!   durability wait*, so commits inside one namespace acknowledge in
//!   apply order while sessions on different shards overlap their fsync
//!   waits. The short apply still runs under the inner exclusive lock
//!   (shard locks order strictly before it), keeping every existing
//!   transcript-equivalence guarantee intact.
//! * **WAL group-commit (batched durability).** The journal enqueues
//!   events under the exclusive lock but *waits* for durability after
//!   releasing it (see `crate::persist::WalTicket`): one group fsync
//!   then acknowledges every committer whose event made the batch, so
//!   mutation throughput scales with writer count instead of paying one
//!   fsync per mutation.
//!
//! Each [`Session`] owns a private design namespace ([`NsId`]): isolated
//! instance lists, an independent `impl$N` naming counter and independent
//! design transactions over the one shared knowledge base. A session's
//! request/query results are therefore byte-identical to replaying the
//! same sequence on a dedicated single-caller [`Icdb`] — concurrency is
//! invisible to each client — while knowledge acquired by *any* session
//! (a new implementation, a cell-library change) bumps the shared version
//! counters and invalidates warm cache hits *and epoch snapshots* for
//! all sessions at once.
//!
//! Mutating through the raw [`IcdbService::write`] guard bypasses the
//! version mirrors; they heal on the next service-level call (any
//! [`IcdbService::read`] renotes them), so prefer the session API when
//! epoch-read freshness matters.
//!
//! ```
//! use icdb_core::{ComponentRequest, IcdbService};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), icdb_core::IcdbError> {
//! let service = Arc::new(IcdbService::new());
//! let alice = service.open_session();
//! let bob = service.open_session();
//! let req = ComponentRequest::by_component("counter").attribute("size", "4");
//! // Isolated namespaces: both sessions get their own `counter$1`.
//! assert_eq!(alice.request_component(&req)?, "counter$1");
//! assert_eq!(bob.request_component(&req)?, "counter$1");
//! // …but the second request was answered from the shared cache.
//! assert_eq!(service.cache_stats().result.hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::error::IcdbError;
use crate::persist::PersistStats;
use crate::space::{NsId, ShardSet};
use crate::spec::{ComponentRequest, Source};
use crate::{CacheStats, Icdb};
use icdb_cql::CqlArg;
use icdb_estimate::LoadSpec;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A thread-safe, multi-session handle over one shared [`Icdb`].
///
/// Wrap it in an [`Arc`] and call [`IcdbService::open_session`] once per
/// client; see the [module docs](self) for the concurrency protocol.
#[derive(Debug)]
pub struct IcdbService {
    inner: RwLock<Icdb>,
    /// Which session token currently *owns* each session namespace —
    /// i.e. whose close/drop is allowed to delete it. `Session::attach`
    /// transfers ownership here, so a stale session (a half-open
    /// connection whose client already re-attached elsewhere) cannot
    /// destroy the namespace out from under the new owner when it
    /// finally drops. Locked only while holding the inner write guard.
    owners: Mutex<HashMap<u64, u64>>,
    next_token: AtomicU64,
    /// Per-namespace write serialization (see module docs): held across
    /// enqueue → apply → durability wait, strictly before `inner`.
    shards: ShardSet,
    /// The cached epoch snapshot serving lock-free knowledge reads, plus
    /// the version mirrors that decide its freshness. The mirrors trail
    /// the live versions by at most one in-flight exclusive section (they
    /// are renoted before the write guard drops).
    epoch: Mutex<Option<Arc<Icdb>>>,
    lib_version: AtomicU64,
    cells_version: AtomicU64,
}

impl Default for IcdbService {
    fn default() -> IcdbService {
        IcdbService::new()
    }
}

impl IcdbService {
    /// A service over a fresh [`Icdb::new`] server.
    pub fn new() -> IcdbService {
        IcdbService::with_icdb(Icdb::new())
    }

    /// A service taking ownership of an existing server (whose root
    /// namespace, pre-generated instances included, stays reachable
    /// through [`IcdbService::read`] / [`IcdbService::write`]).
    pub fn with_icdb(icdb: Icdb) -> IcdbService {
        let lib_version = icdb.library.version();
        let cells_version = icdb.cells.version();
        IcdbService {
            inner: RwLock::new(icdb),
            owners: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            shards: ShardSet::new(),
            epoch: Mutex::new(None),
            lib_version: AtomicU64::new(lib_version),
            cells_version: AtomicU64::new(cells_version),
        }
    }

    /// Convenience for `Arc::new(IcdbService::new())`.
    pub fn shared() -> Arc<IcdbService> {
        Arc::new(IcdbService::new())
    }

    /// A durable service over [`Icdb::open`]: recovers state from the data
    /// directory, then journals every mutation through the group-commit
    /// pipeline (enqueued under the exclusive lock, fsynced in batches
    /// after the guard drops).
    ///
    /// # Errors
    /// See [`Icdb::open`].
    pub fn open(data_dir: impl AsRef<Path>) -> Result<IcdbService, IcdbError> {
        Ok(IcdbService::with_icdb(Icdb::open(data_dir)?))
    }

    /// [`IcdbService::open`] with an explicit fsync policy (see
    /// [`Icdb::open_with_sync`]).
    ///
    /// # Errors
    /// See [`Icdb::open`].
    pub fn open_with_sync(
        data_dir: impl AsRef<Path>,
        sync: bool,
    ) -> Result<IcdbService, IcdbError> {
        Ok(IcdbService::with_icdb(Icdb::open_with_sync(
            data_dir, sync,
        )?))
    }

    /// [`IcdbService::open`] with explicit fsync policy *and* group-commit
    /// window: a committer that finds no flush leader waits up to
    /// `group_commit_window` for companions before leading the batch
    /// itself. `Duration::ZERO` flushes eagerly (still batching whatever
    /// queued while the previous flush was in flight).
    ///
    /// # Errors
    /// See [`Icdb::open`].
    pub fn open_with_options(
        data_dir: impl AsRef<Path>,
        sync: bool,
        group_commit_window: Duration,
    ) -> Result<IcdbService, IcdbError> {
        Ok(IcdbService::with_icdb(Icdb::open_with_options(
            data_dir,
            sync,
            group_commit_window,
        )?))
    }

    /// Snapshot + WAL rotation under the exclusive lock (see
    /// [`Icdb::checkpoint`]). Drains the group-commit queue first, so
    /// every acknowledged — and every merely enqueued — event is on disk
    /// before the snapshot captures.
    ///
    /// # Errors
    /// See [`Icdb::checkpoint`].
    pub fn checkpoint(&self) -> Result<PersistStats, IcdbError> {
        self.write().checkpoint()
    }

    /// The journal's vitals, when the service is durable.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.read().persist_stats()
    }

    /// Shared (read) access to the underlying server. Many readers may
    /// hold this concurrently; it blocks only while a writer is active.
    /// Lock poisoning is recovered from, matching the cache layer: every
    /// exclusive-section mutation is either a single map/store operation
    /// or is followed by consistent bookkeeping.
    pub fn read(&self) -> RwLockReadGuard<'_, Icdb> {
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        // Opportunistic healing: renote the version mirrors so epoch
        // snapshots catch up with mutations made through raw `write()`
        // guards (which bypass `note_versions`).
        self.note_versions(&guard);
        guard
    }

    /// Exclusive (write) access to the underlying server. Prefer the
    /// session API: raw-guard mutations bypass the epoch version mirrors
    /// (healed on the next service-level read) and the group-commit wait
    /// discipline.
    pub fn write(&self) -> RwLockWriteGuard<'_, Icdb> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirrors the live knowledge versions so `epoch()` can judge
    /// snapshot freshness without a lock probe.
    fn note_versions(&self, icdb: &Icdb) {
        self.lib_version
            .store(icdb.library.version(), Ordering::Release);
        self.cells_version
            .store(icdb.cells.version(), Ordering::Release);
    }

    fn lock_epoch(&self) -> std::sync::MutexGuard<'_, Option<Arc<Icdb>>> {
        self.epoch.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current epoch snapshot: a lock-free read view of the knowledge
    /// base (see [`Icdb::read_snapshot`]). Returns the cached snapshot
    /// when its knowledge versions match the mirrors; otherwise rebuilds
    /// it under a brief shared lock. Callers must route only
    /// knowledge/cache reads through it — its namespaces and catalog are
    /// empty.
    fn epoch(&self) -> Arc<Icdb> {
        let lib = self.lib_version.load(Ordering::Acquire);
        let cells = self.cells_version.load(Ordering::Acquire);
        if let Some(snap) = self.lock_epoch().as_ref() {
            if snap.library.version() == lib && snap.cells.version() == cells {
                return Arc::clone(snap);
            }
        }
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        self.note_versions(&guard);
        let snap = Arc::new(guard.read_snapshot());
        drop(guard);
        *self.lock_epoch() = Some(Arc::clone(&snap));
        snap
    }

    /// The exclusive commit section shared by every mutating service
    /// path: journal events are *enqueued* (not fsynced) while `f` runs
    /// under the write guard, the version mirrors are renoted, the guard
    /// drops — and only then does the caller block on the group-commit
    /// ticket. Waiting on the **last** ticket suffices: WAL batches are
    /// drained in sequence order, so a later event durable implies every
    /// earlier one is.
    ///
    /// When `f` itself fails its error wins (events already enqueued
    /// replay deterministically to the same failure); when `f` succeeds
    /// but the group flush fails, the durability error surfaces — the
    /// mutation is applied in memory but unacknowledged, exactly the
    /// contract the recovery suite pins.
    ///
    /// A server whose journal has latched a durability fault is
    /// **read-only degraded**: the section refuses up front with
    /// [`IcdbError::ReadOnly`] instead of running `f`, so no further
    /// mutation piles onto un-journalable state. Only the checkpoint /
    /// `persist` path (`allow_degraded`) may enter, because a successful
    /// checkpoint is exactly what re-arms writes.
    fn commit_exclusive<T>(
        &self,
        f: impl FnOnce(&mut Icdb) -> Result<T, IcdbError>,
    ) -> Result<T, IcdbError> {
        self.commit_exclusive_inner(false, f)
    }

    fn commit_exclusive_inner<T>(
        &self,
        allow_degraded: bool,
        f: impl FnOnce(&mut Icdb) -> Result<T, IcdbError>,
    ) -> Result<T, IcdbError> {
        let mut guard = self.write();
        if !allow_degraded {
            // A follower only mutates through the replication stream;
            // direct commits must go to the primary. The `persist` family
            // (`allow_degraded`) stays reachable — `promote:1` is how a
            // follower becomes writable.
            if let Some(repl) = &guard.repl {
                return Err(IcdbError::NotPrimary(format!(
                    "this node is a replication follower of {}; send mutations to the primary",
                    repl.upstream
                )));
            }
            if let Some(fault) = guard.journal_fault() {
                return Err(IcdbError::ReadOnly(format!(
                    "commits refused while degraded: {fault}"
                )));
            }
        }
        guard.begin_deferred();
        let result = f(&mut guard);
        let tickets = guard.end_deferred();
        self.note_versions(&guard);
        drop(guard);
        let durable = match tickets.last() {
            Some(ticket) => ticket.wait(),
            None => Ok(()),
        };
        match (result, durable) {
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(e),
            (Ok(v), Ok(())) => Ok(v),
        }
    }

    /// [`IcdbService::commit_exclusive`] serialized through `ns`'s shard:
    /// commits inside one namespace acknowledge in apply order, while
    /// sessions on other shards overlap their durability waits (one group
    /// fsync acknowledges them all).
    fn with_write<T>(
        &self,
        ns: NsId,
        f: impl FnOnce(&mut Icdb) -> Result<T, IcdbError>,
    ) -> Result<T, IcdbError> {
        let _shard = self.shards.lock(ns);
        self.commit_exclusive(f)
    }

    /// [`IcdbService::with_write`] for the `persist` command family,
    /// which must stay reachable on a degraded server — `persist
    /// checkpoint:1` / `clear_fault:1` is how an operator re-arms writes.
    fn with_write_allowing_degraded<T>(
        &self,
        ns: NsId,
        f: impl FnOnce(&mut Icdb) -> Result<T, IcdbError>,
    ) -> Result<T, IcdbError> {
        let _shard = self.shards.lock(ns);
        self.commit_exclusive_inner(true, f)
    }

    /// Journals any exploration-corpus rows queued by lock-free epoch
    /// sweeps. Best-effort: a follower or degraded primary cannot
    /// journal corpus rows, so the pending queue is discarded there —
    /// the corpus is a performance aid, never a correctness dependency,
    /// and the queue must not grow without bound.
    pub(crate) fn flush_corpus(&self) {
        if !self.read().corpus.has_pending() {
            return;
        }
        if self.commit_exclusive(|icdb| icdb.flush_corpus()).is_err() {
            self.read().corpus.discard_pending();
        }
    }

    /// Opens a new session with a fresh, isolated design namespace.
    pub fn open_session(self: &Arc<Self>) -> Session {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.write();
        guard.begin_deferred();
        let ns = guard.create_namespace();
        let tickets = guard.end_deferred();
        self.lock_owners().insert(ns.raw(), token);
        self.note_versions(&guard);
        drop(guard);
        if let Some(ticket) = tickets.last() {
            // A durability failure degrades the server to read-only but
            // must not kill the connection path: the session opens with a
            // memory-only namespace (reads serve; commits refuse), and a
            // recovery that never re-armed simply forgets it.
            let _ = ticket.wait();
        }
        Session {
            service: Arc::clone(self),
            ns,
            token,
            closed: false,
        }
    }

    /// The ownership table (poisoning recovered like the inner lock).
    fn lock_owners(&self) -> std::sync::MutexGuard<'_, HashMap<u64, u64>> {
        self.owners.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of open sessions (excluding the root namespace).
    pub fn session_count(&self) -> usize {
        self.read().namespace_count().saturating_sub(1)
    }

    /// Snapshot of the shared generation-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.read().cache_stats()
    }

    /// The full Prometheus text exposition under the shared lock — the
    /// body the `--metrics-addr` HTTP listener serves. Renders the same
    /// sample list as the `metrics` CQL command
    /// ([`Icdb::metrics_samples`]), so the two surfaces cannot drift.
    pub fn metrics_text(&self) -> String {
        self.read().metrics_text()
    }

    /// Knowledge acquisition (paper §2.2) through the service: takes the
    /// exclusive lock, bumps the knowledge-base version and thereby
    /// invalidates warm cache hits — and the epoch snapshot — for every
    /// session at once.
    ///
    /// # Errors
    /// See [`Icdb::insert_implementation`].
    pub fn insert_implementation(
        &self,
        iif_source: &str,
        component_type: &str,
        functions: &[&str],
        param_defaults: &[(&str, i64)],
        connection_text: Option<&str>,
        description: &str,
    ) -> Result<String, IcdbError> {
        self.commit_exclusive(|icdb| {
            icdb.insert_implementation(
                iif_source,
                component_type,
                functions,
                param_defaults,
                connection_text,
                description,
            )
        })
    }

    /// Marks this durable service as a replication **follower** of
    /// `upstream`: direct mutations are refused with
    /// [`IcdbError::NotPrimary`] from here on, sessions open ephemeral
    /// namespaces, and writes arrive only through
    /// [`IcdbService::apply_replicated`].
    ///
    /// # Errors
    /// [`IcdbError::Unsupported`] when the service has no data directory
    /// (a follower must journal what it replays, or promotion would have
    /// nothing to stand on).
    pub fn set_replica(&self, upstream: &str, applied_seq: u64) -> Result<(), IcdbError> {
        let mut guard = self.write();
        if guard.journal.is_none() {
            return Err(IcdbError::Unsupported(
                "a replication follower needs a data directory".into(),
            ));
        }
        guard.repl = Some(crate::persist::ReplState {
            upstream: upstream.to_string(),
            applied_seq,
            lag_events: 0,
        });
        Ok(())
    }

    /// This node's replication role: `degraded` when a durability fault is
    /// latched, else `follower` when tailing an upstream, else `primary`.
    pub fn role(&self) -> &'static str {
        let guard = self.read();
        if guard.journal_fault().is_some() {
            "degraded"
        } else if guard.repl.is_some() {
            "follower"
        } else {
            "primary"
        }
    }

    /// Applies a batch of replicated events on a follower: each event is
    /// journaled into the follower's **own** WAL and applied through the
    /// same [`Icdb`] choke point recovery uses, then the replication
    /// position advances to `applied_seq` (`lag_events` behind the
    /// primary's durable tip). The durability wait happens after the
    /// write guard drops, exactly like a primary commit.
    ///
    /// # Errors
    /// [`IcdbError::Unsupported`] when this node is not (or no longer) a
    /// follower — the tail loop sees this after a promotion and stops;
    /// [`IcdbError::ReadOnly`] when the follower's own journal has
    /// latched a fault (replay must pause rather than silently diverge
    /// from what a restart would recover).
    pub fn apply_replicated(
        &self,
        events: &[crate::events::MutationEvent],
        applied_seq: u64,
        lag_events: u64,
    ) -> Result<(), IcdbError> {
        let mut guard = self.write();
        if guard.repl.is_none() {
            return Err(IcdbError::Unsupported(
                "not a replication follower (promoted?)".into(),
            ));
        }
        if let Some(fault) = guard.journal_fault() {
            return Err(IcdbError::ReadOnly(format!(
                "replication paused while degraded: {fault}"
            )));
        }
        guard.begin_deferred();
        let mut result = Ok(());
        for event in events {
            if let Err(e) = guard.commit(event) {
                // Apply errors are deterministic re-runs of failures the
                // primary already returned to its client (the event is
                // journaled either way — replay hits the same error);
                // only journaling failures stop the batch.
                match e {
                    IcdbError::ReadOnly(_) | IcdbError::Store(_) => {
                        result = Err(e);
                        break;
                    }
                    _ => {}
                }
            }
        }
        let tickets = guard.end_deferred();
        if result.is_ok() {
            if let Some(repl) = guard.repl.as_mut() {
                repl.applied_seq = applied_seq;
                repl.lag_events = lag_events;
            }
        }
        self.note_versions(&guard);
        drop(guard);
        if let Some(ticket) = tickets.last() {
            ticket.wait()?;
        }
        result
    }

    /// Serves a replication bootstrap image: the current generation's
    /// snapshot file payload (empty when the generation opened without
    /// one) plus every **durable** WAL record of that generation, and the
    /// stream cursor (`durable_seq`) a follower should continue from.
    ///
    /// Runs under the shared lock: commits enqueue under the exclusive
    /// lock, so after the explicit flush the durable extent is a stable
    /// upper bound — the tail read cannot race past it.
    ///
    /// # Errors
    /// [`IcdbError::Unsupported`] without a data directory; I/O failures
    /// surface as [`IcdbError::Store`].
    pub fn repl_snapshot(&self) -> Result<ReplSnapshot, IcdbError> {
        let guard = self.read();
        let journal = guard
            .journal
            .as_ref()
            .ok_or_else(|| IcdbError::Unsupported("replication needs a data directory".into()))?;
        journal
            .flush()
            .map_err(|e| IcdbError::Store(format!("flush wal for bootstrap: {e}")))?;
        let (durable_seq, durable_bytes, _) = journal.wal_handle().durable_extent();
        let generation = journal.generation();
        let snapshot =
            icdb_store::wal::read_snapshot_file(&journal.data_dir().snapshot_path(generation))
                .map_err(|e| IcdbError::Store(format!("read snapshot for bootstrap: {e}")))?
                .unwrap_or_default();
        let wal_path = journal.data_dir().wal_path(generation);
        let wal_tail = if durable_bytes == 0 {
            Vec::new()
        } else {
            let mut reader = icdb_store::wal::WalTailReader::open(&wal_path)
                .map_err(|e| IcdbError::Store(format!("open wal tail for bootstrap: {e}")))?;
            reader
                .read_to(durable_bytes)
                .map_err(|e| IcdbError::Store(format!("read wal tail for bootstrap: {e}")))?
        };
        Ok(ReplSnapshot {
            generation,
            durable_seq,
            epoch: journal.epoch(),
            snapshot,
            wal_tail,
        })
    }

    /// Streams durable WAL records after `from` to a follower,
    /// long-polling up to `wait` when none are pending (see
    /// [`GroupWal::collect_since`](icdb_store::wal::GroupWal::collect_since)).
    /// Only a *brief* shared lock is taken to clone the WAL handle; the
    /// poll itself blocks no service lock.
    ///
    /// # Errors
    /// [`IcdbError::Unsupported`] without a data directory;
    /// [`IcdbError::Store`] on a latched WAL fault or when the requested
    /// history has been pruned from the feed (the follower must
    /// re-bootstrap).
    pub fn repl_stream(
        &self,
        from: u64,
        max: usize,
        wait: Duration,
    ) -> Result<(icdb_store::wal::FeedBatch, u64), IcdbError> {
        let (wal, epoch) = {
            let guard = self.read();
            let journal = guard.journal.as_ref().ok_or_else(|| {
                IcdbError::Unsupported("replication needs a data directory".into())
            })?;
            (journal.wal_handle(), journal.epoch())
        };
        let batch = wal
            .collect_since(from, max, wait)
            .map_err(|e| IcdbError::Store(format!("repl stream: {e}")))?;
        Ok((batch, epoch))
    }
}

/// A replication bootstrap image (see [`IcdbService::repl_snapshot`]).
#[derive(Debug)]
pub struct ReplSnapshot {
    /// Snapshot/WAL generation the image was captured from.
    pub generation: u64,
    /// The primary's durable WAL sequence at capture — the `from` cursor
    /// the follower streams from next.
    pub durable_seq: u64,
    /// The primary's boot epoch; a change means the primary restarted and
    /// stream cursors against it are meaningless.
    pub epoch: u64,
    /// The snapshot file's decoded payload (empty when the generation has
    /// no snapshot — a fresh directory).
    pub snapshot: Vec<u8>,
    /// Every durable WAL record of the generation, in order.
    pub wal_tail: Vec<Vec<u8>>,
}

/// One client's view of the service: a private design namespace over the
/// shared knowledge base. Dropping (or [`Session::close`]-ing) the session
/// deletes its instances and design data.
///
/// A `Session` is `Send`, so each client thread can own one; all methods
/// take `&self` and do their own locking. Do **not** call session methods
/// while holding a guard from [`IcdbService::read`]/[`IcdbService::write`]
/// on the same service — the inner `RwLock` is not reentrant.
#[derive(Debug)]
pub struct Session {
    service: Arc<IcdbService>,
    ns: NsId,
    /// This session's ownership token (see `IcdbService::owners`).
    token: u64,
    closed: bool,
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.closed {
            self.release();
        }
    }
}

impl Session {
    /// The namespace id backing this session.
    pub fn ns(&self) -> NsId {
        self.ns
    }

    /// The service this session belongs to.
    pub fn service(&self) -> &Arc<IcdbService> {
        &self.service
    }

    /// How many mutation events have successfully committed in this
    /// session's namespace. Echoed in wire acks (`OK <n> commit:<seq>`)
    /// so a client that lost a response mid-commit can reconnect and
    /// tell "commit applied" from "commit never happened".
    pub fn commit_seq(&self) -> u64 {
        self.service
            .read()
            .commit_seq_in(self.ns)
            .unwrap_or_default()
    }

    /// Closes the session explicitly, deleting its namespace (if this
    /// session still owns it); returns how many instances were deleted.
    pub fn close(mut self) -> usize {
        self.closed = true;
        self.release()
    }

    /// Consumes the session *without* deleting its namespace — the
    /// server-shutdown path. A client did not abandon this session; the
    /// server is going away under it, and on a durable server the
    /// namespace (journaled at creation) must survive the restart so the
    /// client can [`Session::attach`] back to it.
    pub fn park(mut self) {
        self.closed = true;
    }

    /// Drops the bound namespace — but only when this session still owns
    /// it. If another session `attach`ed the namespace in the meantime
    /// (ownership transferred), this is a no-op: a stale half-open
    /// connection must not destroy state its client is actively using
    /// through a newer connection. Runs on the drop path, so a failed
    /// group flush is swallowed rather than panicking — the deletion
    /// replays from the journal prefix either way.
    fn release(&mut self) -> usize {
        let _shard = self.service.shards.lock(self.ns);
        let mut guard = self.service.write();
        let mut owners = self.service.lock_owners();
        if owners.get(&self.ns.raw()) != Some(&self.token) {
            return 0;
        }
        owners.remove(&self.ns.raw());
        drop(owners);
        guard.begin_deferred();
        let deleted = guard.drop_namespace(self.ns);
        let tickets = guard.end_deferred();
        drop(guard);
        if let Some(ticket) = tickets.last() {
            let _ = ticket.wait();
        }
        deleted
    }

    /// Re-binds this session to an existing namespace, dropping the one it
    /// currently owns. This is the crash-recovery reattach path: a client
    /// whose connection died mid-session reconnects (getting a fresh
    /// namespace), then attaches to its recovered pre-crash namespace —
    /// ids survive restarts because namespace creation is journaled.
    ///
    /// Ownership transfers: the attached namespace is dropped when *this*
    /// session closes, and any session previously bound to it loses its
    /// claim (its close/drop becomes a no-op). Attaching to
    /// [`NsId::ROOT`] is allowed and gives the session a view of the root
    /// namespace (which close then leaves intact — the root is
    /// undroppable).
    ///
    /// # Errors
    /// `NotFound` when the namespace does not exist (the session keeps its
    /// current namespace).
    pub fn attach(&mut self, ns: NsId) -> Result<(), IcdbError> {
        if ns == self.ns {
            return Ok(());
        }
        let mut guard = self.service.write();
        guard.spaces.get(ns)?;
        let old = self.ns;
        self.ns = ns;
        // Steal ownership of the target; release the old namespace only
        // if it was still ours.
        let mut owners = self.service.lock_owners();
        owners.insert(ns.raw(), self.token);
        let owned_old = owners.get(&old.raw()) == Some(&self.token);
        if owned_old {
            owners.remove(&old.raw());
        }
        drop(owners);
        let tickets = if owned_old {
            guard.begin_deferred();
            guard.drop_namespace(old);
            guard.end_deferred()
        } else {
            Vec::new()
        };
        drop(guard);
        if let Some(ticket) = tickets.last() {
            // Attach must keep working on a degraded server (it is the
            // reconnect path); the old namespace's drop not being durable
            // only means a never-re-armed recovery resurrects it, empty.
            let _ = ticket.wait();
        }
        Ok(())
    }

    /// Generates a component instance in this session's namespace.
    ///
    /// The expensive read-only prepare phase (cache lookup, or the full
    /// cold pipeline on a miss) runs against the lock-free epoch snapshot
    /// — warm and cold prepares alike block no one. The journaled install
    /// event then runs in the exclusive commit section with the prepared
    /// payload as a hint, which the event path accepts only when it is
    /// provably equivalent to regenerating (same knowledge-base and
    /// cell-library versions — see
    /// [`GenerationPayload::fresh_for`](crate::GenerationPayload::fresh_for));
    /// a snapshot gone stale mid-flight therefore costs a regeneration,
    /// never correctness. A prepare that fails against the snapshot is
    /// retried under the shared lock so error reporting reflects live
    /// state. VHDL clusters skip the pre-warm: they flatten live
    /// instances, so they prepare under the exclusive lock at their
    /// journal position.
    ///
    /// # Errors
    /// See [`Icdb::request_component`].
    pub fn request_component(&self, request: &ComponentRequest) -> Result<String, IcdbError> {
        let hint = match request.source {
            Source::VhdlNetlist(_) => None,
            _ => {
                let epoch = self.service.epoch();
                match epoch.prepare_payload(NsId::ROOT, request) {
                    Ok(payload) => Some(payload),
                    Err(_) => Some(self.service.read().prepare_payload(self.ns, request)?),
                }
            }
        };
        self.service.with_write(self.ns, |icdb| {
            icdb.commit_install(self.ns, request, hint.as_ref())
        })
    }

    /// Batch generation in this session's namespace: prepares (cold work
    /// fanned over `workers` scoped threads against the lock-free epoch
    /// snapshot), then installs sequentially inside one exclusive commit
    /// section — a single group flush acknowledges the whole batch.
    ///
    /// # Errors
    /// See [`Icdb::request_components_batch`].
    pub fn request_components_batch(
        &self,
        requests: &[ComponentRequest],
        workers: usize,
    ) -> Result<Vec<String>, IcdbError> {
        let epoch = self.service.epoch();
        let prepared = epoch.prepare_batch(NsId::ROOT, requests, workers);
        self.service.with_write(self.ns, |icdb| {
            icdb.install_batch_in(self.ns, requests, prepared)
        })
    }

    /// Executes one CQL command in this session's namespace.
    /// Knowledge-only commands (`component_query`, `cache_query`, …) are
    /// answered from the epoch snapshot without any lock; the remaining
    /// read-only commands (`instance_query`, unpublished `explore`, …)
    /// run under the shared lock; mutating commands (and instance queries
    /// needing cold layout generation) take the exclusive commit section.
    ///
    /// # Errors
    /// See [`Icdb::execute`].
    pub fn execute(&self, command: &str, args: &mut [CqlArg]) -> Result<(), IcdbError> {
        if crate::cql::command_text_is_knowledge_only(command) {
            // An epoch failure (e.g. a component missing from a snapshot
            // that is mid-rebuild) falls through to the locked paths so
            // errors always reflect live state.
            if let Ok(true) = self
                .service
                .epoch()
                .execute_read_in(NsId::ROOT, command, args)
            {
                // Epoch sweeps (`explore`) queue corpus rows without a
                // lock; piggyback their journal flush on the way out.
                self.service.flush_corpus();
                return Ok(());
            }
        }
        if crate::cql::command_text_is_read_only(command) {
            let guard = self.service.read();
            if guard.execute_read_in(self.ns, command, args)? {
                drop(guard);
                self.service.flush_corpus();
                return Ok(());
            }
        }
        if crate::cql::command_text_is_persist(command) {
            // `persist` is the re-arming path; a degraded server must
            // still run its checkpoint / clear_fault dispatch.
            return self.service.with_write_allowing_degraded(self.ns, |icdb| {
                icdb.execute_in(self.ns, command, args)
            });
        }
        self.service
            .with_write(self.ns, |icdb| icdb.execute_in(self.ns, command, args))
    }

    /// Runs a design-space exploration sweep in this session against the
    /// lock-free epoch snapshot — warm and cold evaluations alike block
    /// no other session, and results land in the shared cache.
    ///
    /// # Errors
    /// See [`Icdb::explore`].
    pub fn explore(
        &self,
        spec: &crate::explore::ExploreSpec,
    ) -> Result<icdb_explore::ExplorationReport, IcdbError> {
        let report = self.service.epoch().explore_in(NsId::ROOT, spec)?;
        // Cold evaluations above queued corpus rows on the (shared)
        // epoch snapshot; journal them so the corpus survives restart.
        self.service.flush_corpus();
        Ok(report)
    }

    /// §3.3 delay string of one of this session's instances (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn delay_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().delay_string_in(self.ns, name)
    }

    /// §3.3 shape-function string (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn shape_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().shape_string_in(self.ns, name)
    }

    /// Appendix-B area string (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn area_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().area_string_in(self.ns, name)
    }

    /// §4.1 connection string (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn connect_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().connect_string_in(self.ns, name)
    }

    /// Structural VHDL of an instance (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_netlist(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().vhdl_netlist_in(self.ns, name)
    }

    /// VHDL entity head of an instance (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_head(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().vhdl_head_in(self.ns, name)
    }

    /// Power report of an instance (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn power_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().power_string_in(self.ns, name)
    }

    /// CIF of an instance: the warm path (already generated) is a shared
    /// blob read under the shared lock; only cold generation takes the
    /// exclusive commit section.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent; layout errors propagate.
    pub fn cif_layout(&self, name: &str) -> Result<Arc<str>, IcdbError> {
        if let Some(cif) = self.service.read().cif_layout_cached_in(self.ns, name)? {
            return Ok(cif);
        }
        self.service
            .with_write(self.ns, |icdb| icdb.cif_layout_in(self.ns, name))
    }

    /// Regenerates a layout with explicit alternative/port choices
    /// (exclusive commit section).
    ///
    /// # Errors
    /// See [`Icdb::generate_layout`].
    pub fn generate_layout(
        &self,
        instance: &str,
        alternative: Option<usize>,
        port_positions: Option<&str>,
    ) -> Result<Arc<str>, IcdbError> {
        self.service.with_write(self.ns, |icdb| {
            icdb.generate_layout_in(self.ns, instance, alternative, port_positions)
        })
    }

    /// Re-estimates an instance under different loads (exclusive commit
    /// section).
    ///
    /// # Errors
    /// See [`Icdb::resize_for_load`].
    pub fn resize_for_load(
        &self,
        instance: &str,
        loads: &LoadSpec,
        clock_width: f64,
    ) -> Result<(), IcdbError> {
        self.service.with_write(self.ns, |icdb| {
            icdb.resize_for_load_in(self.ns, instance, loads, clock_width)
        })
    }

    /// Names of this session's instances, in creation order.
    pub fn instance_names(&self) -> Vec<String> {
        self.service
            .read()
            .instance_names_in(self.ns)
            .map(|names| names.iter().map(|n| n.to_string()).collect())
            .unwrap_or_default()
    }

    /// Whether this session has an instance of the given name.
    pub fn has_instance(&self, name: &str) -> bool {
        self.service.read().instance_in(self.ns, name).is_ok()
    }

    /// `start_a_design` in this session (exclusive commit section).
    ///
    /// # Errors
    /// See [`Icdb::start_design`].
    pub fn start_design(&self, name: &str) -> Result<(), IcdbError> {
        self.service
            .with_write(self.ns, |icdb| icdb.start_design_in(self.ns, name))
    }

    /// `start_a_transaction` in this session (exclusive commit section).
    ///
    /// # Errors
    /// See [`Icdb::start_transaction`].
    pub fn start_transaction(&self, design: &str) -> Result<(), IcdbError> {
        self.service
            .with_write(self.ns, |icdb| icdb.start_transaction_in(self.ns, design))
    }

    /// `put_in_component_list` in this session (exclusive commit section).
    ///
    /// # Errors
    /// See [`Icdb::put_in_component_list`].
    pub fn put_in_component_list(&self, design: &str, instance: &str) -> Result<(), IcdbError> {
        self.service.with_write(self.ns, |icdb| {
            icdb.put_in_component_list_in(self.ns, design, instance)
        })
    }

    /// `end_a_transaction` in this session (exclusive commit section).
    ///
    /// # Errors
    /// See [`Icdb::end_transaction`].
    pub fn end_transaction(&self, design: &str) -> Result<usize, IcdbError> {
        self.service
            .with_write(self.ns, |icdb| icdb.end_transaction_in(self.ns, design))
    }

    /// `end_a_design` in this session (exclusive commit section).
    ///
    /// # Errors
    /// See [`Icdb::end_design`].
    pub fn end_design(&self, design: &str) -> Result<usize, IcdbError> {
        self.service
            .with_write(self.ns, |icdb| icdb.end_design_in(self.ns, design))
    }

    /// Knowledge acquisition through this session (global effect: the
    /// implementation becomes visible to every session, and warm cache
    /// entries — and epoch snapshots — are invalidated for all).
    ///
    /// # Errors
    /// See [`Icdb::insert_implementation`].
    pub fn insert_implementation(
        &self,
        iif_source: &str,
        component_type: &str,
        functions: &[&str],
        param_defaults: &[(&str, i64)],
        connection_text: Option<&str>,
        description: &str,
    ) -> Result<String, IcdbError> {
        self.service.insert_implementation(
            iif_source,
            component_type,
            functions,
            param_defaults,
            connection_text,
            description,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_share_the_cache_but_not_names() {
        let service = IcdbService::shared();
        let a = service.open_session();
        let b = service.open_session();
        let req = ComponentRequest::by_component("counter").attribute("size", "4");
        let na = a.request_component(&req).unwrap();
        let nb = b.request_component(&req).unwrap();
        assert_eq!(na, "counter$1");
        assert_eq!(nb, "counter$1");
        let stats = service.cache_stats();
        assert_eq!(stats.result.misses, 1);
        assert_eq!(stats.result.hits, 1);
        assert_eq!(a.delay_string(&na).unwrap(), b.delay_string(&nb).unwrap());
    }

    #[test]
    fn dropping_a_session_deletes_its_instances() {
        let service = IcdbService::shared();
        let a = service.open_session();
        let req = ComponentRequest::by_implementation("ADDER").attribute("size", "4");
        a.request_component(&req).unwrap();
        assert_eq!(service.session_count(), 1);
        let deleted = a.close();
        assert_eq!(deleted, 1);
        assert_eq!(service.session_count(), 0);
        // Root namespace untouched.
        assert!(service.read().instance_names().is_empty());
    }

    #[test]
    fn session_cql_runs_in_its_own_namespace() {
        let service = IcdbService::shared();
        let a = service.open_session();
        let b = service.open_session();
        let mut args = vec![CqlArg::OutStr(None)];
        a.execute(
            "command:request_component; component_name:counter; attribute:(size:4); \
             generated_component:?s",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStr(Some(name)) = &args[0] else {
            panic!("no name");
        };
        assert!(a.has_instance(name));
        assert!(!b.has_instance(name));
        // Read-only query runs under the shared lock and still answers.
        let mut args = vec![CqlArg::InStr(name.clone()), CqlArg::OutStr(None)];
        a.execute(
            "command:instance_query; generated_component:%s; delay:?s",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStr(Some(delay)) = &args[1] else {
            panic!("no delay");
        };
        assert!(delay.contains("CW "));
    }

    #[test]
    fn attach_transfers_ownership_away_from_the_stale_session() {
        let service = IcdbService::shared();
        let stale = service.open_session();
        let req = ComponentRequest::by_implementation("ADDER").attribute("size", "4");
        let name = stale.request_component(&req).unwrap();
        let target = stale.ns();
        // The reconnect flow: a fresh session attaches to the old one's
        // namespace (the old connection is half-open, not yet dropped).
        let mut fresh = service.open_session();
        fresh.attach(target).unwrap();
        assert!(fresh.has_instance(&name));
        // The stale session finally drops — it must NOT destroy the
        // namespace the new owner is using.
        drop(stale);
        assert!(fresh.has_instance(&name));
        assert!(service.read().instance_names_in(target).is_ok());
        // The new owner's close does delete it.
        assert_eq!(fresh.close(), 1);
        assert!(service.read().instance_names_in(target).is_err());
    }

    #[test]
    fn root_namespace_stays_usable_through_the_service() {
        let service = IcdbService::shared();
        let req = ComponentRequest::by_implementation("ADDER").attribute("size", "3");
        let name = service.write().request_component(&req).unwrap();
        assert!(service.read().instance(&name).is_ok());
        let session = service.open_session();
        assert!(!session.has_instance(&name));
    }

    const GRAY_COUNTER: &str = "
NAME: GRAY_COUNTER;
PARAMETER: size;
INORDER: CLK, RST;
OUTORDER: G[size];
PIIFVARIABLE: B[size], NB[size], C[size+1];
VARIABLE: i;
{
  C[0] = 1;
  #for(i=0;i<size;i++)
  {
    B[i] = (B[i] (+) C[i]) @(~r CLK) ~a(0/RST);
    C[i+1] = C[i] * B[i];
  }
  #for(i=0;i<size-1;i++)
    G[i] = B[i] (+) B[i+1];
  G[size-1] = B[size-1];
}";

    /// Knowledge-only CQL runs against the epoch snapshot; knowledge
    /// acquisition bumps the version mirrors so the next epoch read is a
    /// *new* snapshot that sees the new implementation.
    #[test]
    fn epoch_snapshot_tracks_knowledge_versions() {
        let service = IcdbService::shared();
        let session = service.open_session();
        let before = service.epoch();
        // Same versions → same cached snapshot, no rebuild.
        assert_eq!(Arc::as_ptr(&before), Arc::as_ptr(&service.epoch()));
        // The knowledge-only fast path answers through the snapshot.
        let mut args = vec![CqlArg::OutStrList(None)];
        session
            .execute(
                "command:component_query; component:counter; ICDB_components:?s[]",
                &mut args,
            )
            .unwrap();
        let CqlArg::OutStrList(Some(names)) = &args[0] else {
            panic!("no names");
        };
        assert!(names.iter().any(|n| n == "COUNTER"));
        session
            .insert_implementation(
                GRAY_COUNTER,
                "Counter",
                &["INC"],
                &[("size", 4)],
                None,
                "epoch invalidation probe",
            )
            .unwrap();
        // The mirrors moved: the next epoch read rebuilds and sees the
        // new implementation; the stale snapshot never does.
        let after = service.epoch();
        assert_ne!(Arc::as_ptr(&before), Arc::as_ptr(&after));
        assert!(after.library.implementation("GRAY_COUNTER").is_some());
        assert!(before.library.implementation("GRAY_COUNTER").is_none());
    }

    /// Same-shard sessions serialize their commits; different-shard
    /// sessions interleave — either way every session's transcript
    /// matches what a dedicated single-caller server would produce (the
    /// heavyweight version of this check lives in
    /// `tests/shard_properties.rs`).
    #[test]
    fn concurrent_commits_across_shards_stay_isolated() {
        let service = IcdbService::shared();
        let sessions: Vec<Session> = (0..4).map(|_| service.open_session()).collect();
        let names: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .iter()
                .enumerate()
                .map(|(i, session)| {
                    scope.spawn(move || {
                        let req = ComponentRequest::by_implementation("ADDER")
                            .attribute("size", format!("{}", 2 + i));
                        session.request_component(&req).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Isolated naming counters: every session names its first
        // instance identically, regardless of commit interleaving.
        assert_eq!(names.len(), 4);
        assert!(names.iter().all(|n| n == &names[0]), "names: {names:?}");
        for (session, name) in sessions.iter().zip(&names) {
            assert_eq!(session.instance_names(), vec![name.clone()]);
        }
    }
}
