//! The concurrent multi-session service layer: one shared [`Icdb`] served
//! to many clients at once.
//!
//! [`IcdbService`] wraps the knowledge base, cell library, generation
//! cache and relational catalog in a single `RwLock`ed handle. The lock
//! discipline exploits the prepare/install split of the generation path:
//!
//! * **shared (read) lock** — warm *and cold* `Icdb::prepare_payload`
//!   (the cache has interior mutability, so even a cold pipeline run never
//!   blocks other readers), instance queries (`delay_string`,
//!   `shape_string`, cached CIF reads), design-space exploration sweeps
//!   ([`Icdb::explore_in`], including the CQL `explore` command) and the
//!   rest of the read-only CQL command subset
//!   ([`Icdb::execute_read_in`]);
//! * **exclusive (write) lock** — the short `install_payload` that names
//!   and registers an instance, layout generation, knowledge acquisition
//!   and design/transaction management.
//!
//! Each [`Session`] owns a private design namespace ([`NsId`]): isolated
//! instance lists, an independent `impl$N` naming counter and independent
//! design transactions over the one shared knowledge base. A session's
//! request/query results are therefore byte-identical to replaying the
//! same sequence on a dedicated single-caller [`Icdb`] — concurrency is
//! invisible to each client — while knowledge acquired by *any* session
//! (a new implementation, a cell-library change) bumps the shared version
//! counters and invalidates warm cache hits for *all* sessions at once.
//!
//! ```
//! use icdb_core::{ComponentRequest, IcdbService};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), icdb_core::IcdbError> {
//! let service = Arc::new(IcdbService::new());
//! let alice = service.open_session();
//! let bob = service.open_session();
//! let req = ComponentRequest::by_component("counter").attribute("size", "4");
//! // Isolated namespaces: both sessions get their own `counter$1`.
//! assert_eq!(alice.request_component(&req)?, "counter$1");
//! assert_eq!(bob.request_component(&req)?, "counter$1");
//! // …but the second request was answered from the shared cache.
//! assert_eq!(service.cache_stats().result.hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::error::IcdbError;
use crate::persist::PersistStats;
use crate::space::NsId;
use crate::spec::{ComponentRequest, Source};
use crate::{CacheStats, Icdb};
use icdb_cql::CqlArg;
use icdb_estimate::LoadSpec;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A thread-safe, multi-session handle over one shared [`Icdb`].
///
/// Wrap it in an [`Arc`] and call [`IcdbService::open_session`] once per
/// client; see the [module docs](self) for the lock discipline.
#[derive(Debug)]
pub struct IcdbService {
    inner: RwLock<Icdb>,
    /// Which session token currently *owns* each session namespace —
    /// i.e. whose close/drop is allowed to delete it. `Session::attach`
    /// transfers ownership here, so a stale session (a half-open
    /// connection whose client already re-attached elsewhere) cannot
    /// destroy the namespace out from under the new owner when it
    /// finally drops. Locked only while holding the inner write guard.
    owners: Mutex<HashMap<u64, u64>>,
    next_token: AtomicU64,
}

impl Default for IcdbService {
    fn default() -> IcdbService {
        IcdbService::new()
    }
}

impl IcdbService {
    /// A service over a fresh [`Icdb::new`] server.
    pub fn new() -> IcdbService {
        IcdbService::with_icdb(Icdb::new())
    }

    /// A service taking ownership of an existing server (whose root
    /// namespace, pre-generated instances included, stays reachable
    /// through [`IcdbService::read`] / [`IcdbService::write`]).
    pub fn with_icdb(icdb: Icdb) -> IcdbService {
        IcdbService {
            inner: RwLock::new(icdb),
            owners: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
        }
    }

    /// Convenience for `Arc::new(IcdbService::new())`.
    pub fn shared() -> Arc<IcdbService> {
        Arc::new(IcdbService::new())
    }

    /// A durable service over [`Icdb::open`]: recovers state from the data
    /// directory, then journals every mutation (fsynced inside the
    /// exclusive lock, before the guard drops).
    ///
    /// # Errors
    /// See [`Icdb::open`].
    pub fn open(data_dir: impl AsRef<Path>) -> Result<IcdbService, IcdbError> {
        Ok(IcdbService::with_icdb(Icdb::open(data_dir)?))
    }

    /// [`IcdbService::open`] with an explicit fsync policy (see
    /// [`Icdb::open_with_sync`]).
    ///
    /// # Errors
    /// See [`Icdb::open`].
    pub fn open_with_sync(
        data_dir: impl AsRef<Path>,
        sync: bool,
    ) -> Result<IcdbService, IcdbError> {
        Ok(IcdbService::with_icdb(Icdb::open_with_sync(
            data_dir, sync,
        )?))
    }

    /// Snapshot + WAL rotation under the exclusive lock (see
    /// [`Icdb::checkpoint`]).
    ///
    /// # Errors
    /// See [`Icdb::checkpoint`].
    pub fn checkpoint(&self) -> Result<PersistStats, IcdbError> {
        self.write().checkpoint()
    }

    /// The journal's vitals, when the service is durable.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.read().persist_stats()
    }

    /// Shared (read) access to the underlying server. Many readers may
    /// hold this concurrently; it blocks only while a writer is active.
    /// Lock poisoning is recovered from, matching the cache layer: every
    /// exclusive-section mutation is either a single map/store operation
    /// or is followed by consistent bookkeeping.
    pub fn read(&self) -> RwLockReadGuard<'_, Icdb> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive (write) access to the underlying server.
    pub fn write(&self) -> RwLockWriteGuard<'_, Icdb> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a new session with a fresh, isolated design namespace.
    pub fn open_session(self: &Arc<Self>) -> Session {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.write();
        let ns = guard.create_namespace();
        self.lock_owners().insert(ns.raw(), token);
        drop(guard);
        Session {
            service: Arc::clone(self),
            ns,
            token,
            closed: false,
        }
    }

    /// The ownership table (poisoning recovered like the inner lock).
    fn lock_owners(&self) -> std::sync::MutexGuard<'_, HashMap<u64, u64>> {
        self.owners.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of open sessions (excluding the root namespace).
    pub fn session_count(&self) -> usize {
        self.read().namespace_count().saturating_sub(1)
    }

    /// Snapshot of the shared generation-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.read().cache_stats()
    }

    /// Knowledge acquisition (paper §2.2) through the service: takes the
    /// exclusive lock, bumps the knowledge-base version and thereby
    /// invalidates warm cache hits for every session at once.
    ///
    /// # Errors
    /// See [`Icdb::insert_implementation`].
    pub fn insert_implementation(
        &self,
        iif_source: &str,
        component_type: &str,
        functions: &[&str],
        param_defaults: &[(&str, i64)],
        connection_text: Option<&str>,
        description: &str,
    ) -> Result<String, IcdbError> {
        self.write().insert_implementation(
            iif_source,
            component_type,
            functions,
            param_defaults,
            connection_text,
            description,
        )
    }
}

/// One client's view of the service: a private design namespace over the
/// shared knowledge base. Dropping (or [`Session::close`]-ing) the session
/// deletes its instances and design data.
///
/// A `Session` is `Send`, so each client thread can own one; all methods
/// take `&self` and do their own locking. Do **not** call session methods
/// while holding a guard from [`IcdbService::read`]/[`IcdbService::write`]
/// on the same service — the inner `RwLock` is not reentrant.
#[derive(Debug)]
pub struct Session {
    service: Arc<IcdbService>,
    ns: NsId,
    /// This session's ownership token (see `IcdbService::owners`).
    token: u64,
    closed: bool,
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.closed {
            self.release();
        }
    }
}

impl Session {
    /// The namespace id backing this session.
    pub fn ns(&self) -> NsId {
        self.ns
    }

    /// The service this session belongs to.
    pub fn service(&self) -> &Arc<IcdbService> {
        &self.service
    }

    /// Closes the session explicitly, deleting its namespace (if this
    /// session still owns it); returns how many instances were deleted.
    pub fn close(mut self) -> usize {
        self.closed = true;
        self.release()
    }

    /// Drops the bound namespace — but only when this session still owns
    /// it. If another session `attach`ed the namespace in the meantime
    /// (ownership transferred), this is a no-op: a stale half-open
    /// connection must not destroy state its client is actively using
    /// through a newer connection.
    fn release(&mut self) -> usize {
        let mut guard = self.service.write();
        let mut owners = self.service.lock_owners();
        if owners.get(&self.ns.raw()) != Some(&self.token) {
            return 0;
        }
        owners.remove(&self.ns.raw());
        drop(owners);
        guard.drop_namespace(self.ns)
    }

    /// Re-binds this session to an existing namespace, dropping the one it
    /// currently owns. This is the crash-recovery reattach path: a client
    /// whose connection died mid-session reconnects (getting a fresh
    /// namespace), then attaches to its recovered pre-crash namespace —
    /// ids survive restarts because namespace creation is journaled.
    ///
    /// Ownership transfers: the attached namespace is dropped when *this*
    /// session closes, and any session previously bound to it loses its
    /// claim (its close/drop becomes a no-op). Attaching to
    /// [`NsId::ROOT`] is allowed and gives the session a view of the root
    /// namespace (which close then leaves intact — the root is
    /// undroppable).
    ///
    /// # Errors
    /// `NotFound` when the namespace does not exist (the session keeps its
    /// current namespace).
    pub fn attach(&mut self, ns: NsId) -> Result<(), IcdbError> {
        if ns == self.ns {
            return Ok(());
        }
        let mut guard = self.service.write();
        guard.spaces.get(ns)?;
        let old = self.ns;
        self.ns = ns;
        // Steal ownership of the target; release the old namespace only
        // if it was still ours.
        let mut owners = self.service.lock_owners();
        owners.insert(ns.raw(), self.token);
        let owned_old = owners.get(&old.raw()) == Some(&self.token);
        if owned_old {
            owners.remove(&old.raw());
        }
        drop(owners);
        if owned_old {
            guard.drop_namespace(old);
        }
        Ok(())
    }

    /// Generates a component instance in this session's namespace.
    ///
    /// The expensive read-only prepare phase (cache lookup, or the full
    /// cold pipeline on a miss) runs under the *shared* lock; the
    /// journaled install event then takes the exclusive lock with the
    /// prepared payload as a hint, which the event path accepts only when
    /// it is provably equivalent to regenerating (same knowledge-base and
    /// cell-library versions — see
    /// [`GenerationPayload::fresh_for`](crate::GenerationPayload::fresh_for)).
    /// VHDL clusters
    /// skip the pre-warm: they flatten live instances, so they prepare
    /// under the exclusive lock at their journal position.
    ///
    /// # Errors
    /// See [`Icdb::request_component`].
    pub fn request_component(&self, request: &ComponentRequest) -> Result<String, IcdbError> {
        let hint = match request.source {
            Source::VhdlNetlist(_) => None,
            _ => Some(self.service.read().prepare_payload(self.ns, request)?),
        };
        self.service
            .write()
            .commit_install(self.ns, request, hint.as_ref())
    }

    /// Batch generation in this session's namespace: prepares (cold work
    /// fanned over `workers` scoped threads, all under the shared lock),
    /// then installs sequentially under one exclusive lock.
    ///
    /// # Errors
    /// See [`Icdb::request_components_batch`].
    pub fn request_components_batch(
        &self,
        requests: &[ComponentRequest],
        workers: usize,
    ) -> Result<Vec<String>, IcdbError> {
        let prepared = self
            .service
            .read()
            .prepare_batch(self.ns, requests, workers);
        self.service
            .write()
            .install_batch_in(self.ns, requests, prepared)
    }

    /// Executes one CQL command in this session's namespace. Read-only
    /// commands (`component_query`, `instance_query`, …) run under the
    /// shared lock; mutating commands (and instance queries needing cold
    /// layout generation) fall back to the exclusive lock.
    ///
    /// # Errors
    /// See [`Icdb::execute`].
    pub fn execute(&self, command: &str, args: &mut [CqlArg]) -> Result<(), IcdbError> {
        if crate::cql::command_text_is_read_only(command) {
            let guard = self.service.read();
            if guard.execute_read_in(self.ns, command, args)? {
                return Ok(());
            }
        }
        self.service.write().execute_in(self.ns, command, args)
    }

    /// Runs a design-space exploration sweep in this session (shared
    /// lock — the sweep is read-only; warm and cold evaluations alike run
    /// without blocking other sessions' reads).
    ///
    /// # Errors
    /// See [`Icdb::explore`].
    pub fn explore(
        &self,
        spec: &crate::explore::ExploreSpec,
    ) -> Result<icdb_explore::ExplorationReport, IcdbError> {
        self.service.read().explore_in(self.ns, spec)
    }

    /// §3.3 delay string of one of this session's instances (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn delay_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().delay_string_in(self.ns, name)
    }

    /// §3.3 shape-function string (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn shape_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().shape_string_in(self.ns, name)
    }

    /// Appendix-B area string (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn area_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().area_string_in(self.ns, name)
    }

    /// §4.1 connection string (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn connect_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().connect_string_in(self.ns, name)
    }

    /// Structural VHDL of an instance (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_netlist(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().vhdl_netlist_in(self.ns, name)
    }

    /// VHDL entity head of an instance (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_head(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().vhdl_head_in(self.ns, name)
    }

    /// Power report of an instance (shared lock).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn power_string(&self, name: &str) -> Result<String, IcdbError> {
        self.service.read().power_string_in(self.ns, name)
    }

    /// CIF of an instance: the warm path (already generated) is a shared
    /// blob read under the shared lock; only cold generation takes the
    /// exclusive lock.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent; layout errors propagate.
    pub fn cif_layout(&self, name: &str) -> Result<Arc<str>, IcdbError> {
        if let Some(cif) = self.service.read().cif_layout_cached_in(self.ns, name)? {
            return Ok(cif);
        }
        self.service.write().cif_layout_in(self.ns, name)
    }

    /// Regenerates a layout with explicit alternative/port choices
    /// (exclusive lock).
    ///
    /// # Errors
    /// See [`Icdb::generate_layout`].
    pub fn generate_layout(
        &self,
        instance: &str,
        alternative: Option<usize>,
        port_positions: Option<&str>,
    ) -> Result<Arc<str>, IcdbError> {
        self.service
            .write()
            .generate_layout_in(self.ns, instance, alternative, port_positions)
    }

    /// Re-estimates an instance under different loads (exclusive lock).
    ///
    /// # Errors
    /// See [`Icdb::resize_for_load`].
    pub fn resize_for_load(
        &self,
        instance: &str,
        loads: &LoadSpec,
        clock_width: f64,
    ) -> Result<(), IcdbError> {
        self.service
            .write()
            .resize_for_load_in(self.ns, instance, loads, clock_width)
    }

    /// Names of this session's instances, in creation order.
    pub fn instance_names(&self) -> Vec<String> {
        self.service
            .read()
            .instance_names_in(self.ns)
            .map(|names| names.iter().map(|n| n.to_string()).collect())
            .unwrap_or_default()
    }

    /// Whether this session has an instance of the given name.
    pub fn has_instance(&self, name: &str) -> bool {
        self.service.read().instance_in(self.ns, name).is_ok()
    }

    /// `start_a_design` in this session (exclusive lock).
    ///
    /// # Errors
    /// See [`Icdb::start_design`].
    pub fn start_design(&self, name: &str) -> Result<(), IcdbError> {
        self.service.write().start_design_in(self.ns, name)
    }

    /// `start_a_transaction` in this session (exclusive lock).
    ///
    /// # Errors
    /// See [`Icdb::start_transaction`].
    pub fn start_transaction(&self, design: &str) -> Result<(), IcdbError> {
        self.service.write().start_transaction_in(self.ns, design)
    }

    /// `put_in_component_list` in this session (exclusive lock).
    ///
    /// # Errors
    /// See [`Icdb::put_in_component_list`].
    pub fn put_in_component_list(&self, design: &str, instance: &str) -> Result<(), IcdbError> {
        self.service
            .write()
            .put_in_component_list_in(self.ns, design, instance)
    }

    /// `end_a_transaction` in this session (exclusive lock).
    ///
    /// # Errors
    /// See [`Icdb::end_transaction`].
    pub fn end_transaction(&self, design: &str) -> Result<usize, IcdbError> {
        self.service.write().end_transaction_in(self.ns, design)
    }

    /// `end_a_design` in this session (exclusive lock).
    ///
    /// # Errors
    /// See [`Icdb::end_design`].
    pub fn end_design(&self, design: &str) -> Result<usize, IcdbError> {
        self.service.write().end_design_in(self.ns, design)
    }

    /// Knowledge acquisition through this session (global effect: the
    /// implementation becomes visible to every session, and warm cache
    /// entries are invalidated for all).
    ///
    /// # Errors
    /// See [`Icdb::insert_implementation`].
    pub fn insert_implementation(
        &self,
        iif_source: &str,
        component_type: &str,
        functions: &[&str],
        param_defaults: &[(&str, i64)],
        connection_text: Option<&str>,
        description: &str,
    ) -> Result<String, IcdbError> {
        self.service.insert_implementation(
            iif_source,
            component_type,
            functions,
            param_defaults,
            connection_text,
            description,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_share_the_cache_but_not_names() {
        let service = IcdbService::shared();
        let a = service.open_session();
        let b = service.open_session();
        let req = ComponentRequest::by_component("counter").attribute("size", "4");
        let na = a.request_component(&req).unwrap();
        let nb = b.request_component(&req).unwrap();
        assert_eq!(na, "counter$1");
        assert_eq!(nb, "counter$1");
        let stats = service.cache_stats();
        assert_eq!(stats.result.misses, 1);
        assert_eq!(stats.result.hits, 1);
        assert_eq!(a.delay_string(&na).unwrap(), b.delay_string(&nb).unwrap());
    }

    #[test]
    fn dropping_a_session_deletes_its_instances() {
        let service = IcdbService::shared();
        let a = service.open_session();
        let req = ComponentRequest::by_implementation("ADDER").attribute("size", "4");
        a.request_component(&req).unwrap();
        assert_eq!(service.session_count(), 1);
        let deleted = a.close();
        assert_eq!(deleted, 1);
        assert_eq!(service.session_count(), 0);
        // Root namespace untouched.
        assert!(service.read().instance_names().is_empty());
    }

    #[test]
    fn session_cql_runs_in_its_own_namespace() {
        let service = IcdbService::shared();
        let a = service.open_session();
        let b = service.open_session();
        let mut args = vec![CqlArg::OutStr(None)];
        a.execute(
            "command:request_component; component_name:counter; attribute:(size:4); \
             generated_component:?s",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStr(Some(name)) = &args[0] else {
            panic!("no name");
        };
        assert!(a.has_instance(name));
        assert!(!b.has_instance(name));
        // Read-only query runs under the shared lock and still answers.
        let mut args = vec![CqlArg::InStr(name.clone()), CqlArg::OutStr(None)];
        a.execute(
            "command:instance_query; generated_component:%s; delay:?s",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStr(Some(delay)) = &args[1] else {
            panic!("no delay");
        };
        assert!(delay.contains("CW "));
    }

    #[test]
    fn attach_transfers_ownership_away_from_the_stale_session() {
        let service = IcdbService::shared();
        let stale = service.open_session();
        let req = ComponentRequest::by_implementation("ADDER").attribute("size", "4");
        let name = stale.request_component(&req).unwrap();
        let target = stale.ns();
        // The reconnect flow: a fresh session attaches to the old one's
        // namespace (the old connection is half-open, not yet dropped).
        let mut fresh = service.open_session();
        fresh.attach(target).unwrap();
        assert!(fresh.has_instance(&name));
        // The stale session finally drops — it must NOT destroy the
        // namespace the new owner is using.
        drop(stale);
        assert!(fresh.has_instance(&name));
        assert!(service.read().instance_names_in(target).is_ok());
        // The new owner's close does delete it.
        assert_eq!(fresh.close(), 1);
        assert!(service.read().instance_names_in(target).is_err());
    }

    #[test]
    fn root_namespace_stays_usable_through_the_service() {
        let service = IcdbService::shared();
        let req = ComponentRequest::by_implementation("ADDER").attribute("size", "3");
        let name = service.write().request_component(&req).unwrap();
        assert!(service.read().instance(&name).is_ok());
        let session = service.open_session();
        assert!(!session.has_instance(&name));
    }
}
