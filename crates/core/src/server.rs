//! The component-server engine: the embedded generation path of Fig. 8
//! (IIF expander → MILO-style synthesis → transistor sizing → estimators →
//! layout generator) plus instance storage and queries.

use crate::error::IcdbError;
use crate::instance::ComponentInstance;
use crate::spec::{ComponentRequest, Source, TargetLevel};
use crate::Icdb;
use icdb_estimate::{estimate_shape, LoadSpec};
use icdb_iif::FlatModule;
use icdb_layout::{place, to_ascii, to_cif, PortSpec};
use icdb_logic::{synthesize, Gate, GateNetlist, SynthOptions};
use icdb_sizing::size_netlist;
use icdb_store::Value;
use icdb_vhdl::{emit_entity, emit_netlist, parse_netlist, vhdl_id};

/// How many strip-count alternatives the shape estimator sweeps.
const MAX_SHAPE_STRIPS: usize = 8;

impl Icdb {
    /// Generates a component instance and stores it; returns the instance
    /// name ("ICDB will generate a component according to these
    /// specifications. The name of this component is put into the variable
    /// counter_ins", §3.2.2).
    ///
    /// # Errors
    /// Propagates failures from any stage of the generation path and
    /// reports unknown implementations/components as [`IcdbError::NotFound`].
    pub fn request_component(&mut self, request: &ComponentRequest) -> Result<String, IcdbError> {
        let (netlist, implementation, functions, params, connection) = match &request.source {
            Source::Library {
                component_name,
                implementation,
                functions,
            } => {
                let imp = self
                    .resolve_implementation(
                        component_name.as_deref(),
                        implementation.as_deref(),
                        functions,
                    )?
                    .clone();
                let params = imp.bind_attributes(&request.attributes)?;
                let pairs: Vec<(&str, i64)> =
                    params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let flat = icdb_iif::expand(&imp.module, &pairs, &self.library)?;
                let netlist = synthesize(&flat, &self.cells, &SynthOptions::default())?;
                self.stash_flat_views(&flat);
                (netlist, imp.name, imp.functions, params, imp.connection)
            }
            Source::Iif(text) => {
                let module = icdb_iif::parse(text)?;
                let mut params = Vec::new();
                for p in &module.parameters {
                    let v = request
                        .attributes
                        .iter()
                        .find(|(k, _)| k == p)
                        .map(|(_, v)| {
                            v.parse::<i64>().map_err(|_| {
                                IcdbError::Cql(format!("attribute {p}:{v} is not an integer"))
                            })
                        })
                        .transpose()?
                        .ok_or_else(|| {
                            IcdbError::Unsupported(format!(
                                "IIF design `{}` needs attribute `{p}`",
                                module.name
                            ))
                        })?;
                    params.push((p.clone(), v));
                }
                let pairs: Vec<(&str, i64)> =
                    params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let flat = icdb_iif::expand(&module, &pairs, &self.library)?;
                let netlist = synthesize(&flat, &self.cells, &SynthOptions::default())?;
                self.stash_flat_views(&flat);
                (
                    netlist,
                    "iif".to_string(),
                    module.functions.clone(),
                    params,
                    Default::default(),
                )
            }
            Source::VhdlNetlist(text) => {
                let netlist = self.flatten_cluster(text)?;
                (
                    netlist,
                    "cluster".to_string(),
                    Vec::new(),
                    Vec::new(),
                    Default::default(),
                )
            }
        };

        let mut netlist = netlist;
        let loads = request.constraints.load_spec();
        let strategy = request.sizing_strategy();
        let sizing = size_netlist(&mut netlist, &self.cells, &loads, &strategy);
        let mut met = sizing.met;
        if let Some(bound) = request.constraints.set_up_time {
            let worst_setup = sizing
                .report
                .setup_times
                .iter()
                .map(|(_, d)| *d)
                .fold(0.0f64, f64::max);
            if worst_setup > bound {
                met = false;
            }
        }
        let shape = estimate_shape(&netlist, &self.cells, MAX_SHAPE_STRIPS)?;

        let name = match &request.instance_name {
            Some(n) => n.clone(),
            None => {
                self.counter += 1;
                format!("{}${}", implementation.to_ascii_lowercase(), self.counter)
            }
        };
        if self.instances.contains_key(&name) {
            return Err(IcdbError::Unsupported(format!(
                "instance `{name}` already exists"
            )));
        }

        let instance = ComponentInstance {
            name: name.clone(),
            implementation,
            functions,
            params,
            netlist,
            loads,
            report: sizing.report,
            shape,
            met,
            connection,
            layout: None,
        };
        self.persist_instance(&instance)?;
        self.instances.insert(name.clone(), instance);
        self.instance_order.push(name.clone());
        self.designs.note_created(&name);

        if request.target == TargetLevel::Layout {
            self.generate_layout(
                &name,
                request.alternative,
                request.port_positions.as_deref(),
            )?;
        }
        Ok(name)
    }

    fn resolve_implementation(
        &self,
        component_name: Option<&str>,
        implementation: Option<&str>,
        functions: &[String],
    ) -> Result<&crate::library::ComponentImpl, IcdbError> {
        if let Some(name) = implementation {
            return self
                .library
                .implementation(name)
                .ok_or_else(|| IcdbError::NotFound(format!("implementation `{name}`")));
        }
        let mut candidates: Vec<&crate::library::ComponentImpl> = match component_name {
            Some(ty) if !ty.is_empty() => self.library.by_component_type(ty),
            _ => self.library.iter().collect(),
        };
        if !functions.is_empty() {
            candidates.retain(|c| {
                functions
                    .iter()
                    .all(|f| c.functions.iter().any(|cf| cf.eq_ignore_ascii_case(f)))
            });
        }
        candidates.into_iter().next().ok_or_else(|| {
            IcdbError::NotFound(format!(
                "no implementation for component {component_name:?} functions {functions:?}"
            ))
        })
    }

    /// Flattens a VHDL netlist of existing instances into one netlist
    /// (the partitioner's clustering path, Appendix B §6.3).
    fn flatten_cluster(&self, text: &str) -> Result<GateNetlist, IcdbError> {
        let parsed = parse_netlist(text)?;
        let mut out = GateNetlist::new(parsed.name.clone());
        for p in &parsed.ports {
            let id = out.intern(&p.name);
            match p.dir {
                icdb_vhdl::PortDir::In => out.inputs.push(id),
                icdb_vhdl::PortDir::Out => out.outputs.push(id),
            }
        }
        for inst in &parsed.instances {
            let sub = self.instances.get(&inst.component).ok_or_else(|| {
                IcdbError::NotFound(format!(
                    "cluster references unknown instance `{}`",
                    inst.component
                ))
            })?;
            // Map the sub-instance's port nets onto cluster nets via the
            // port map (formals accept raw or VHDL-sanitized names).
            let mut mapping: Vec<Option<icdb_logic::GNet>> = vec![None; sub.netlist.net_count()];
            for (formal, actual) in &inst.port_map {
                let port = sub
                    .netlist
                    .inputs
                    .iter()
                    .chain(&sub.netlist.outputs)
                    .copied()
                    .find(|&n| {
                        let pn = sub.netlist.net_name(n);
                        // VHDL identifiers are case-insensitive; accept both
                        // the raw netlist name and its VHDL transliteration.
                        pn.eq_ignore_ascii_case(formal)
                            || vhdl_id(pn) == formal.to_ascii_lowercase()
                    })
                    .ok_or_else(|| {
                        IcdbError::NotFound(format!(
                            "instance `{}` has no port `{formal}`",
                            inst.component
                        ))
                    })?;
                mapping[port.index()] = Some(out.intern(actual));
            }
            // Clone gates, renaming unmapped nets into a per-label space.
            for g in &sub.netlist.gates {
                let map_net = |nets: &mut Vec<Option<icdb_logic::GNet>>,
                               out: &mut GateNetlist,
                               n: icdb_logic::GNet| {
                    if let Some(m) = nets[n.index()] {
                        m
                    } else {
                        let fresh =
                            out.intern(&format!("{}${}", inst.label, sub.netlist.net_name(n)));
                        nets[n.index()] = Some(fresh);
                        fresh
                    }
                };
                let inputs = g
                    .inputs
                    .iter()
                    .map(|&n| map_net(&mut mapping, &mut out, n))
                    .collect();
                let output = map_net(&mut mapping, &mut out, g.output);
                out.gates.push(Gate {
                    cell: g.cell,
                    inputs,
                    output,
                    size: g.size,
                });
            }
        }
        out.validate(&self.cells)
            .map_err(|e| IcdbError::Synthesis(e.message))?;
        Ok(out)
    }

    /// Generates (or regenerates) the layout of an instance, honoring a
    /// shape alternative and port positions; returns the CIF text
    /// (the `request_component; instance:%s; alternative:3;
    /// port_position:%s; CIF_layout:?s` query of §3.3).
    ///
    /// # Errors
    /// Fails on unknown instances, bad alternatives or malformed port
    /// specifications.
    pub fn generate_layout(
        &mut self,
        instance: &str,
        alternative: Option<usize>,
        port_positions: Option<&str>,
    ) -> Result<String, IcdbError> {
        let inst = self
            .instances
            .get(instance)
            .ok_or_else(|| IcdbError::NotFound(format!("instance `{instance}`")))?;
        let strips = match alternative {
            Some(a) => {
                let alt = inst
                    .shape
                    .alternatives
                    .get(a.saturating_sub(1))
                    .ok_or_else(|| {
                        IcdbError::Layout(format!(
                            "instance `{instance}` has {} shape alternatives, not {a}",
                            inst.shape.alternatives.len()
                        ))
                    })?;
                alt.strips
            }
            None => inst.shape.best_area().map(|a| a.strips).unwrap_or(1),
        };
        let spec = match port_positions {
            Some(text) => PortSpec::parse(text)?,
            None => {
                let ins: Vec<String> = inst
                    .netlist
                    .inputs
                    .iter()
                    .map(|&n| inst.netlist.net_name(n).to_string())
                    .collect();
                let outs: Vec<String> = inst
                    .netlist
                    .outputs
                    .iter()
                    .map(|&n| inst.netlist.net_name(n).to_string())
                    .collect();
                PortSpec::default_for(&ins, &outs)
            }
        };
        let layout = place(&inst.netlist, &self.cells, strips, &spec)?;
        let cif = to_cif(&layout);
        let art = to_ascii(&layout, 100);
        self.files
            .write(format!("instances/{instance}.cif"), cif.clone());
        self.files
            .write(format!("instances/{instance}.layout.txt"), art);
        self.instances
            .get_mut(instance)
            .expect("checked above")
            .layout = Some(layout);
        Ok(cif)
    }

    /// Re-estimates an instance under different output loads, resizing to
    /// hold a clock-width target (the Fig. 10 exploration).
    ///
    /// # Errors
    /// Fails on unknown instances.
    pub fn resize_for_load(
        &mut self,
        instance: &str,
        loads: &LoadSpec,
        clock_width: f64,
    ) -> Result<(), IcdbError> {
        let inst = self
            .instances
            .get_mut(instance)
            .ok_or_else(|| IcdbError::NotFound(format!("instance `{instance}`")))?;
        let goal = icdb_sizing::SizingGoal::clock(clock_width);
        let result = size_netlist(
            &mut inst.netlist,
            &self.cells,
            loads,
            &icdb_sizing::Strategy::Constraints(goal),
        );
        inst.loads = loads.clone();
        inst.report = result.report;
        inst.met = result.met;
        inst.shape = estimate_shape(&inst.netlist, &self.cells, MAX_SHAPE_STRIPS)?;
        Ok(())
    }

    /// The instance named `name`.
    ///
    /// # Errors
    /// `NotFound` if absent.
    pub fn instance(&self, name: &str) -> Result<&ComponentInstance, IcdbError> {
        self.instances
            .get(name)
            .ok_or_else(|| IcdbError::NotFound(format!("instance `{name}`")))
    }

    /// Names of all generated instances, in creation order.
    pub fn instance_names(&self) -> &[String] {
        &self.instance_order
    }

    /// Deletes an instance and its design data.
    pub(crate) fn delete_instance(&mut self, name: &str) {
        if self.instances.remove(name).is_some() {
            self.instance_order.retain(|n| n != name);
            for suffix in [
                "iif",
                "milo",
                "vhdl",
                "vhdl_head",
                "delay",
                "shape",
                "cif",
                "layout.txt",
            ] {
                self.files.remove(&format!("instances/{name}.{suffix}"));
            }
            let _ = self
                .db
                .execute(&format!("DELETE FROM instances WHERE name = '{name}'"));
        }
    }

    /// §3.3 delay string (`CW …` / `WD port …` / `SD port …`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn delay_string(&self, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance(name)?.report.to_string())
    }

    /// §3.3 shape-function string (`Alternative=… width=… height=…`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn shape_string(&self, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance(name)?.shape.to_alternative_format())
    }

    /// Appendix-B area string (`strip = … width = … height = … area = …`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn area_string(&self, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance(name)?.shape.to_strip_format())
    }

    /// §4.1 connection string (`## function INC … ** DWUP 0`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn connect_string(&self, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance(name)?.connection.to_paper_format())
    }

    /// Structural VHDL of the instance.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_netlist(&self, name: &str) -> Result<String, IcdbError> {
        Ok(emit_netlist(&self.instance(name)?.netlist, &self.cells))
    }

    /// VHDL entity head of the instance.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_head(&self, name: &str) -> Result<String, IcdbError> {
        Ok(emit_entity(&self.instance(name)?.netlist))
    }

    /// CIF of the instance (generating a default layout on first use).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent; layout errors propagate.
    pub fn cif_layout(&mut self, name: &str) -> Result<String, IcdbError> {
        let path = format!("instances/{name}.cif");
        if let Ok(text) = self.files.read(&path) {
            return Ok(text.to_string());
        }
        self.generate_layout(name, None, None)
    }

    fn stash_flat_views(&mut self, flat: &FlatModule) {
        self.last_flat_iif = Some(flat.to_string());
        self.last_milo = Some(flat.to_milo_format());
    }

    fn persist_instance(&mut self, inst: &ComponentInstance) -> Result<(), IcdbError> {
        self.db.insert(
            "instances",
            vec![
                Value::Text(inst.name.clone()),
                Value::Text(inst.implementation.clone()),
                Value::Int(inst.netlist.gates.len() as i64),
                Value::Real(inst.area()),
                Value::Real(inst.report.clock_width),
                Value::Int(i64::from(inst.met)),
            ],
        )?;
        if let Some(flat) = self.last_flat_iif.take() {
            self.files
                .write(format!("instances/{}.iif", inst.name), flat);
        }
        if let Some(milo) = self.last_milo.take() {
            self.files
                .write(format!("instances/{}.milo", inst.name), milo);
        }
        self.files.write(
            format!("instances/{}.vhdl", inst.name),
            emit_netlist(&inst.netlist, &self.cells),
        );
        self.files.write(
            format!("instances/{}.vhdl_head", inst.name),
            emit_entity(&inst.netlist),
        );
        self.files.write(
            format!("instances/{}.delay", inst.name),
            inst.report.to_string(),
        );
        self.files.write(
            format!("instances/{}.shape", inst.name),
            inst.shape.to_alternative_format(),
        );
        Ok(())
    }
}
