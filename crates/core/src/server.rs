//! The component-server engine: the embedded generation path of Fig. 8
//! (IIF expander → MILO-style synthesis → transistor sizing → estimators →
//! layout generator) plus instance storage and queries.
//!
//! Generation is split into a read-only **prepare** phase
//! ([`Icdb::prepare_payload`] → [`GenerationPayload`]) memoized by the
//! [`crate::cache::GenCache`], and a mutating **install** phase that names
//! the instance and persists its views. The split is what makes both
//! [`Icdb::request_components_batch`] (cold prepares fan out across scoped
//! threads sharing the cache) and the concurrent
//! [`crate::service::IcdbService`] possible: the service runs prepares
//! under a *shared* read lock and takes the exclusive lock only for the
//! short install.
//!
//! Every instance-touching method exists in two forms: the classic
//! single-caller form (`instance`, `delay_string`, …) operating on
//! [`NsId::ROOT`], and an `_in` form addressing an explicit session
//! namespace.

use crate::cache::{FlatKey, GenerationPayload, NetKey, RequestKey, SourceKey};
use crate::error::IcdbError;
use crate::events::MutationEvent;
use crate::instance::ComponentInstance;
use crate::space::{Namespace, NsId};
use crate::spec::{ComponentRequest, Source};
use crate::Icdb;
use icdb_estimate::{estimate_shape, LoadSpec};
use icdb_layout::{place, to_ascii, to_cif, PortSpec};
use icdb_logic::{synthesize, Gate, GateNetlist, SynthOptions};
use icdb_sizing::size_netlist;
use icdb_store::Value;
use icdb_vhdl::{emit_entity, emit_netlist, parse_netlist, vhdl_id};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How many strip-count alternatives the shape estimator sweeps.
const MAX_SHAPE_STRIPS: usize = 8;

/// Result of preparing one request (shared payload or the first error).
type PreparedPayload = Result<Arc<GenerationPayload>, IcdbError>;
/// A prepared payload plus the canonical request key the generation path
/// built for its result-cache lookup (`None` for unkeyable sources).
type KeyedPayload = (Option<RequestKey>, PreparedPayload);

/// Design-data views persisted per instance (file suffixes).
pub(crate) const INSTANCE_VIEW_SUFFIXES: [&str; 8] = [
    "iif",
    "milo",
    "vhdl",
    "vhdl_head",
    "delay",
    "shape",
    "cif",
    "layout.txt",
];

impl Icdb {
    /// Generates a component instance and stores it; returns the instance
    /// name ("ICDB will generate a component according to these
    /// specifications. The name of this component is put into the variable
    /// counter_ins", §3.2.2).
    ///
    /// Repeat requests with the same canonical [`RequestKey`] are answered
    /// from the generation cache: one hash lookup plus a cheap clone of the
    /// shared payload, instead of re-running expansion, synthesis, sizing
    /// and estimation.
    ///
    /// # Errors
    /// Propagates failures from any stage of the generation path and
    /// reports unknown implementations/components as [`IcdbError::NotFound`].
    pub fn request_component(&mut self, request: &ComponentRequest) -> Result<String, IcdbError> {
        self.request_component_in(NsId::ROOT, request)
    }

    /// [`Icdb::request_component`] against an explicit session namespace.
    ///
    /// The whole generate-and-install is one journaled
    /// [`MutationEvent::InstallComponent`]; recovery replays the same
    /// deterministic pipeline, so a restarted server reproduces the
    /// instance byte-for-byte.
    ///
    /// # Errors
    /// As [`Icdb::request_component`]; also fails on unknown namespaces.
    pub fn request_component_in(
        &mut self,
        ns: NsId,
        request: &ComponentRequest,
    ) -> Result<String, IcdbError> {
        self.commit_install(ns, request, None)
    }

    /// Generates many components in one call, fanning the *cold* pipeline
    /// work out across up to `workers` scoped threads that share the
    /// generation cache; instances are then installed sequentially in
    /// request order, so auto-generated names are deterministic.
    ///
    /// `workers` is clamped to `1..=requests.len()`: a `workers` of 0 runs
    /// sequentially instead of spawning a zero-worker scope that could
    /// never fill the result slots.
    ///
    /// VHDL-cluster requests skip the parallel prepare (they flatten live
    /// instances, so they are prepared at install time in request order —
    /// a cluster may therefore reference instances created earlier in the
    /// same batch, exactly as if the requests were issued sequentially).
    ///
    /// # Errors
    /// The first failing request aborts the remaining installs; instances
    /// already installed by this call are kept.
    pub fn request_components_batch(
        &mut self,
        requests: &[ComponentRequest],
        workers: usize,
    ) -> Result<Vec<String>, IcdbError> {
        self.request_components_batch_in(NsId::ROOT, requests, workers)
    }

    /// [`Icdb::request_components_batch`] against an explicit namespace.
    ///
    /// # Errors
    /// As [`Icdb::request_components_batch`].
    pub fn request_components_batch_in(
        &mut self,
        ns: NsId,
        requests: &[ComponentRequest],
        workers: usize,
    ) -> Result<Vec<String>, IcdbError> {
        let prepared = self.prepare_batch(ns, requests, workers);
        self.install_batch_in(ns, requests, prepared)
    }

    /// The read-only half of a batch: prepares every request, fanning cold
    /// work across up to `workers` scoped threads sharing the cache. Safe
    /// under a shared lock. `workers` is clamped to `1..=requests.len()`
    /// (0 would otherwise spawn a scope with no workers and leave every
    /// result slot empty — the `expect` below would panic).
    pub(crate) fn prepare_batch(
        &self,
        ns: NsId,
        requests: &[ComponentRequest],
        workers: usize,
    ) -> Vec<PreparedPayload> {
        self.prepare_batch_keyed(ns, requests, workers)
            .into_iter()
            .map(|(_, payload)| payload)
            .collect()
    }

    /// [`Icdb::prepare_batch`] that also returns each request's canonical
    /// [`RequestKey`] (when its source has one). The keys fall out of the
    /// generation path for free — [`Icdb::prepare_payload_keyed`] builds
    /// them for the result-cache lookup anyway — so the exploration sweep
    /// can record corpus rows without re-canonicalizing every grid point.
    pub(crate) fn prepare_batch_keyed(
        &self,
        ns: NsId,
        requests: &[ComponentRequest],
        workers: usize,
    ) -> Vec<KeyedPayload> {
        // Cluster requests are never prepared here: they flatten *live*
        // instances, so the install path re-prepares them at their
        // position in the journal order (see `Icdb::apply_install`).
        let prepare_one = |request: &ComponentRequest| -> KeyedPayload {
            if matches!(request.source, Source::VhdlNetlist(_)) {
                (
                    None,
                    Err(IcdbError::Unsupported(
                        "VHDL clusters are prepared at install time".into(),
                    )),
                )
            } else {
                match self.prepare_payload_keyed(ns, request) {
                    Ok((key, payload)) => (key, Ok(payload)),
                    Err(err) => (None, Err(err)),
                }
            }
        };
        let workers = workers.clamp(1, requests.len().max(1));
        if workers <= 1 {
            return requests.iter().map(prepare_one).collect();
        }
        let slots: Vec<Mutex<Option<KeyedPayload>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(i) else {
                        break;
                    };
                    let result = prepare_one(request);
                    *crate::cache::lock(&slots[i]) = Some(result);
                });
            }
        });
        slots
            .iter()
            .map(|slot| {
                crate::cache::lock(slot)
                    .take()
                    .expect("every request slot is filled")
            })
            .collect()
    }

    /// The mutating half of a batch: journals and installs one
    /// [`MutationEvent::InstallComponent`] per request in request order
    /// (deterministic names), generating layouts where requested. The
    /// prepared payloads serve as cache-warm hints; clusters re-prepare at
    /// their journal position (so, unlike earlier revisions, a cluster in
    /// a batch *may* reference instances created earlier in the same
    /// batch — identical to issuing the requests sequentially).
    pub(crate) fn install_batch_in(
        &mut self,
        ns: NsId,
        requests: &[ComponentRequest],
        prepared: Vec<PreparedPayload>,
    ) -> Result<Vec<String>, IcdbError> {
        let mut names = Vec::with_capacity(requests.len());
        for (request, slot) in requests.iter().zip(prepared) {
            let name = if matches!(request.source, Source::VhdlNetlist(_)) {
                self.commit_install(ns, request, None)?
            } else {
                let payload = slot?;
                self.commit_install(ns, request, Some(&payload))?
            };
            names.push(name);
        }
        Ok(names)
    }

    /// The read-only half of generation: resolves the request, consults the
    /// cache layer by layer, and runs only the stages that miss. Safe to
    /// call concurrently from scoped threads sharing `&self` (the service
    /// calls it under a shared read lock, so cold generation never blocks
    /// other sessions' reads; the exploration sweep fans one call per grid
    /// point). The mutating install half ([`Icdb::request_component`] runs
    /// both) turns a payload into a named instance.
    ///
    /// # Errors
    /// Propagates resolution, expansion, synthesis and estimation failures.
    pub(crate) fn prepare_payload(
        &self,
        ns: NsId,
        request: &ComponentRequest,
    ) -> Result<Arc<GenerationPayload>, IcdbError> {
        self.prepare_payload_keyed(ns, request)
            .map(|(_, payload)| payload)
    }

    /// [`Icdb::prepare_payload`] that also returns the request's canonical
    /// [`RequestKey`] — `None` for sources the corpus cannot key stably
    /// across processes (inline IIF and VHDL clusters). Library requests
    /// build the key for the result-cache lookup regardless, so returning
    /// it costs nothing.
    pub(crate) fn prepare_payload_keyed(
        &self,
        ns: NsId,
        request: &ComponentRequest,
    ) -> Result<(Option<RequestKey>, Arc<GenerationPayload>), IcdbError> {
        match &request.source {
            Source::Library {
                component_name,
                implementation,
                functions,
            } => {
                let imp = self.resolve_implementation(
                    component_name.as_deref(),
                    implementation.as_deref(),
                    functions,
                )?;
                let params = imp.bind_attributes(&request.attributes)?;
                let source = SourceKey::Implementation(imp.name.clone());
                let key = RequestKey::new(
                    source,
                    &params,
                    request,
                    self.library.version(),
                    self.cells.version(),
                );
                if let Some(hit) = self.cache.get_result(&key) {
                    return Ok((Some(key), hit));
                }
                let payload = Arc::new(self.generate_from_module(
                    &imp.module,
                    key.flat_key(),
                    imp.name.clone(),
                    imp.functions.clone(),
                    params,
                    imp.connection.clone(),
                    request,
                )?);
                self.cache.put_result(key.clone(), payload.clone());
                Ok((Some(key), payload))
            }
            Source::Iif(text) => {
                let module = icdb_iif::parse(text)?;
                let mut params = Vec::new();
                for p in &module.parameters {
                    let v = request
                        .attributes
                        .iter()
                        .find(|(k, _)| k == p)
                        .map(|(_, v)| {
                            v.parse::<i64>().map_err(|_| {
                                IcdbError::Cql(format!("attribute {p}:{v} is not an integer"))
                            })
                        })
                        .transpose()?
                        .ok_or_else(|| {
                            IcdbError::Unsupported(format!(
                                "IIF design `{}` needs attribute `{p}`",
                                module.name
                            ))
                        })?;
                    params.push((p.clone(), v));
                }
                let source = SourceKey::Iif(text.clone());
                let key = RequestKey::new(
                    source,
                    &params,
                    request,
                    self.library.version(),
                    self.cells.version(),
                );
                if let Some(hit) = self.cache.get_result(&key) {
                    return Ok((None, hit));
                }
                let payload = Arc::new(self.generate_from_module(
                    &module,
                    key.flat_key(),
                    "iif".to_string(),
                    module.functions.clone(),
                    params,
                    Default::default(),
                    request,
                )?);
                self.cache.put_result(key, payload.clone());
                Ok((None, payload))
            }
            Source::VhdlNetlist(text) => {
                // Clusters flatten *live* instances, so their results are
                // never cached — a stale hit could resurrect deleted state.
                let netlist = self.flatten_cluster(ns, text)?;
                Ok((
                    None,
                    Arc::new(self.finish_payload(
                        netlist,
                        "cluster".to_string(),
                        Vec::new(),
                        Vec::new(),
                        Default::default(),
                        None,
                        request,
                    )?),
                ))
            }
        }
    }

    /// Canonicalizes a request into its cache/corpus key *without* running
    /// any generation stage. `Ok(None)` for sources the corpus cannot key
    /// stably across processes (inline IIF and VHDL clusters — exploration
    /// grids are always library-implementation requests anyway).
    pub(crate) fn resolve_request_key(
        &self,
        request: &ComponentRequest,
    ) -> Result<Option<RequestKey>, IcdbError> {
        let Source::Library {
            component_name,
            implementation,
            functions,
        } = &request.source
        else {
            return Ok(None);
        };
        let imp = self.resolve_implementation(
            component_name.as_deref(),
            implementation.as_deref(),
            functions,
        )?;
        let params = imp.bind_attributes(&request.attributes)?;
        let source = SourceKey::Implementation(imp.name.clone());
        Ok(Some(RequestKey::new(
            source,
            &params,
            request,
            self.library.version(),
            self.cells.version(),
        )))
    }

    /// Runs (or recalls) expansion and synthesis for a module, then the
    /// per-request sizing/estimation tail.
    #[allow(clippy::too_many_arguments)]
    fn generate_from_module(
        &self,
        module: &icdb_iif::Module,
        flat_key: FlatKey,
        implementation: String,
        functions: Vec<String>,
        params: Vec<(String, i64)>,
        connection: icdb_genus::ConnectionTable,
        request: &ComponentRequest,
    ) -> Result<GenerationPayload, IcdbError> {
        let flat = match self.cache.get_flat(&flat_key) {
            Some(flat) => flat,
            None => {
                let pairs: Vec<(&str, i64)> =
                    params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let flat = Arc::new(icdb_iif::expand(module, &pairs, &self.library)?);
                self.cache.put_flat(flat_key.clone(), flat.clone());
                flat
            }
        };
        let options = SynthOptions::default();
        let net_key = NetKey::new(flat_key, &options, self.cells.version());
        let mapped = match self.cache.get_netlist(&net_key) {
            Some(netlist) => netlist,
            None => {
                let netlist = Arc::new(synthesize(&flat, &self.cells, &options)?);
                self.cache.put_netlist(net_key, netlist.clone());
                netlist
            }
        };
        let views = (flat.to_string(), flat.to_milo_format());
        self.finish_payload(
            (*mapped).clone(),
            implementation,
            functions,
            params,
            connection,
            Some(views),
            request,
        )
    }

    /// The per-request pipeline tail: transistor sizing against the
    /// request's loads/strategy, constraint checking, shape estimation, and
    /// rendering of every design-data view the store will hold.
    #[allow(clippy::too_many_arguments)]
    fn finish_payload(
        &self,
        mut netlist: GateNetlist,
        implementation: String,
        functions: Vec<String>,
        params: Vec<(String, i64)>,
        connection: icdb_genus::ConnectionTable,
        flat_views: Option<(String, String)>,
        request: &ComponentRequest,
    ) -> Result<GenerationPayload, IcdbError> {
        let loads = request.constraints.load_spec();
        let strategy = request.sizing_strategy();
        let sizing = size_netlist(&mut netlist, &self.cells, &loads, &strategy);
        let mut met = sizing.met;
        if let Some(bound) = request.constraints.set_up_time {
            let worst_setup = sizing
                .report
                .setup_times
                .iter()
                .map(|(_, d)| *d)
                .fold(0.0f64, f64::max);
            if worst_setup > bound {
                met = false;
            }
        }
        let shape = estimate_shape(&netlist, &self.cells, MAX_SHAPE_STRIPS)?;
        let power_uw = icdb_estimate::estimate_power(
            &netlist,
            &self.cells,
            &icdb_estimate::PowerSpec::default(),
        )?
        .total_uw;
        let (flat_iif, milo) = match flat_views {
            Some((iif, milo)) => (Some(Arc::from(iif)), Some(Arc::from(milo))),
            None => (None, None),
        };
        let vhdl: Arc<str> = emit_netlist(&netlist, &self.cells).into();
        let vhdl_head: Arc<str> = emit_entity(&netlist).into();
        let delay_text: Arc<str> = sizing.report.to_string().into();
        let shape_text: Arc<str> = shape.to_alternative_format().into();
        Ok(GenerationPayload {
            implementation,
            functions,
            params,
            netlist,
            loads,
            report: sizing.report,
            shape,
            power_uw,
            met,
            connection,
            flat_iif,
            milo,
            vhdl,
            vhdl_head,
            delay_text,
            shape_text,
            lib_version: self.library.version(),
            cells_version: self.cells.version(),
        })
    }

    /// The mutating half of generation: names the instance (one interned
    /// allocation shared by the instance, the map key, the creation order
    /// and the return value), persists the payload's pre-rendered views,
    /// and registers the instance in the namespace.
    pub(crate) fn install_payload_in(
        &mut self,
        ns: NsId,
        request: &ComponentRequest,
        payload: &Arc<GenerationPayload>,
    ) -> Result<String, IcdbError> {
        let name: Arc<str> = match &request.instance_name {
            Some(n) => Arc::from(n.as_str()),
            None => {
                let space = self.spaces.get_mut(ns)?;
                space.counter += 1;
                format!(
                    "{}${}",
                    payload.implementation.to_ascii_lowercase(),
                    space.counter
                )
                .into()
            }
        };
        if self.spaces.get(ns)?.instances.contains_key(&*name) {
            return Err(IcdbError::Unsupported(format!(
                "instance `{name}` already exists"
            )));
        }

        let instance = ComponentInstance {
            name: name.clone(),
            implementation: payload.implementation.clone(),
            functions: payload.functions.clone(),
            params: payload.params.clone(),
            netlist: payload.netlist.clone(),
            loads: payload.loads.clone(),
            report: payload.report.clone(),
            shape: payload.shape.clone(),
            met: payload.met,
            connection: payload.connection.clone(),
            layout: None,
        };
        self.persist_payload(ns, &name, payload)?;
        let space = self.spaces.get_mut(ns)?;
        space.instances.insert(name.clone(), instance);
        space.instance_order.push(name.clone());
        space.designs.note_created(&name);
        Ok(name.to_string())
    }

    fn resolve_implementation(
        &self,
        component_name: Option<&str>,
        implementation: Option<&str>,
        functions: &[String],
    ) -> Result<&crate::library::ComponentImpl, IcdbError> {
        if let Some(name) = implementation {
            return self
                .library
                .implementation(name)
                .ok_or_else(|| IcdbError::NotFound(format!("implementation `{name}`")));
        }
        let mut candidates: Vec<&crate::library::ComponentImpl> = match component_name {
            Some(ty) if !ty.is_empty() => self.library.by_component_type(ty),
            _ => self.library.iter().collect(),
        };
        if !functions.is_empty() {
            candidates.retain(|c| {
                functions
                    .iter()
                    .all(|f| c.functions.iter().any(|cf| cf.eq_ignore_ascii_case(f)))
            });
        }
        candidates.into_iter().next().ok_or_else(|| {
            IcdbError::NotFound(format!(
                "no implementation for component {component_name:?} functions {functions:?}"
            ))
        })
    }

    /// Flattens a VHDL netlist of existing instances into one netlist
    /// (the partitioner's clustering path, Appendix B §6.3). Instances are
    /// resolved in the caller's namespace.
    fn flatten_cluster(&self, ns: NsId, text: &str) -> Result<GateNetlist, IcdbError> {
        let instances = &self.spaces.get(ns)?.instances;
        let parsed = parse_netlist(text)?;
        let mut out = GateNetlist::new(parsed.name.clone());
        for p in &parsed.ports {
            let id = out.intern(&p.name);
            match p.dir {
                icdb_vhdl::PortDir::In => out.inputs.push(id),
                icdb_vhdl::PortDir::Out => out.outputs.push(id),
            }
        }
        for inst in &parsed.instances {
            let sub = instances.get(inst.component.as_str()).ok_or_else(|| {
                IcdbError::NotFound(format!(
                    "cluster references unknown instance `{}`",
                    inst.component
                ))
            })?;
            // Map the sub-instance's port nets onto cluster nets via the
            // port map (formals accept raw or VHDL-sanitized names).
            let mut mapping: Vec<Option<icdb_logic::GNet>> = vec![None; sub.netlist.net_count()];
            for (formal, actual) in &inst.port_map {
                let port = sub
                    .netlist
                    .inputs
                    .iter()
                    .chain(&sub.netlist.outputs)
                    .copied()
                    .find(|&n| {
                        let pn = sub.netlist.net_name(n);
                        // VHDL identifiers are case-insensitive; accept both
                        // the raw netlist name and its VHDL transliteration.
                        pn.eq_ignore_ascii_case(formal)
                            || vhdl_id(pn) == formal.to_ascii_lowercase()
                    })
                    .ok_or_else(|| {
                        IcdbError::NotFound(format!(
                            "instance `{}` has no port `{formal}`",
                            inst.component
                        ))
                    })?;
                mapping[port.index()] = Some(out.intern(actual));
            }
            // Clone gates, renaming unmapped nets into a per-label space.
            for g in &sub.netlist.gates {
                let map_net = |nets: &mut Vec<Option<icdb_logic::GNet>>,
                               out: &mut GateNetlist,
                               n: icdb_logic::GNet| {
                    if let Some(m) = nets[n.index()] {
                        m
                    } else {
                        let fresh =
                            out.intern(&format!("{}${}", inst.label, sub.netlist.net_name(n)));
                        nets[n.index()] = Some(fresh);
                        fresh
                    }
                };
                let inputs = g
                    .inputs
                    .iter()
                    .map(|&n| map_net(&mut mapping, &mut out, n))
                    .collect();
                let output = map_net(&mut mapping, &mut out, g.output);
                out.gates.push(Gate {
                    cell: g.cell,
                    inputs,
                    output,
                    size: g.size,
                });
            }
        }
        out.validate(&self.cells)
            .map_err(|e| IcdbError::Synthesis(e.message))?;
        Ok(out)
    }

    /// Generates (or regenerates) the layout of an instance, honoring a
    /// shape alternative and port positions; returns the CIF text as a
    /// shared blob (the `request_component; instance:%s; alternative:3;
    /// port_position:%s; CIF_layout:?s` query of §3.3).
    ///
    /// # Errors
    /// Fails on unknown instances, bad alternatives or malformed port
    /// specifications.
    pub fn generate_layout(
        &mut self,
        instance: &str,
        alternative: Option<usize>,
        port_positions: Option<&str>,
    ) -> Result<Arc<str>, IcdbError> {
        self.generate_layout_in(NsId::ROOT, instance, alternative, port_positions)
    }

    /// [`Icdb::generate_layout`] against an explicit namespace. Journaled
    /// as a [`MutationEvent::GenerateLayout`].
    ///
    /// # Errors
    /// As [`Icdb::generate_layout`].
    pub fn generate_layout_in(
        &mut self,
        ns: NsId,
        instance: &str,
        alternative: Option<usize>,
        port_positions: Option<&str>,
    ) -> Result<Arc<str>, IcdbError> {
        self.commit(&MutationEvent::GenerateLayout {
            ns,
            instance: instance.to_string(),
            alternative,
            port_positions: port_positions.map(str::to_string),
        })?
        .into_cif()
        .ok_or_else(|| IcdbError::Layout("GenerateLayout applied without a CIF".into()))
    }

    /// The apply-side of [`Icdb::generate_layout_in`] (shared by live
    /// commits, layout-targeted installs and recovery replay).
    pub(crate) fn apply_generate_layout(
        &mut self,
        ns: NsId,
        instance: &str,
        alternative: Option<usize>,
        port_positions: Option<&str>,
    ) -> Result<Arc<str>, IcdbError> {
        let inst = self
            .spaces
            .get(ns)?
            .instances
            .get(instance)
            .ok_or_else(|| IcdbError::NotFound(format!("instance `{instance}`")))?;
        let strips = match alternative {
            Some(a) => {
                let alt = inst
                    .shape
                    .alternatives
                    .get(a.saturating_sub(1))
                    .ok_or_else(|| {
                        IcdbError::Layout(format!(
                            "instance `{instance}` has {} shape alternatives, not {a}",
                            inst.shape.alternatives.len()
                        ))
                    })?;
                alt.strips
            }
            None => inst.shape.best_area().map(|a| a.strips).unwrap_or(1),
        };
        let spec = match port_positions {
            Some(text) => PortSpec::parse(text)?,
            None => {
                let ins: Vec<String> = inst
                    .netlist
                    .inputs
                    .iter()
                    .map(|&n| inst.netlist.net_name(n).to_string())
                    .collect();
                let outs: Vec<String> = inst
                    .netlist
                    .outputs
                    .iter()
                    .map(|&n| inst.netlist.net_name(n).to_string())
                    .collect();
                PortSpec::default_for(&ins, &outs)
            }
        };
        let layout = place(&inst.netlist, &self.cells, strips, &spec)?;
        // Shared blob: the store write and the returned handle are
        // reference-count bumps on one allocation, not text copies.
        let cif: Arc<str> = to_cif(&layout).into();
        let art = to_ascii(&layout, 100);
        self.files
            .write(Namespace::file_path(ns, instance, "cif"), cif.clone());
        self.files
            .write(Namespace::file_path(ns, instance, "layout.txt"), art);
        self.spaces
            .get_mut(ns)?
            .instances
            .get_mut(instance)
            .expect("checked above")
            .layout = Some(layout);
        Ok(cif)
    }

    /// Re-estimates an instance under different output loads, resizing to
    /// hold a clock-width target (the Fig. 10 exploration).
    ///
    /// # Errors
    /// Fails on unknown instances.
    pub fn resize_for_load(
        &mut self,
        instance: &str,
        loads: &LoadSpec,
        clock_width: f64,
    ) -> Result<(), IcdbError> {
        self.resize_for_load_in(NsId::ROOT, instance, loads, clock_width)
    }

    /// [`Icdb::resize_for_load`] against an explicit namespace. Journaled
    /// as a [`MutationEvent::ResizeForLoad`].
    ///
    /// # Errors
    /// Fails on unknown instances or namespaces.
    pub fn resize_for_load_in(
        &mut self,
        ns: NsId,
        instance: &str,
        loads: &LoadSpec,
        clock_width: f64,
    ) -> Result<(), IcdbError> {
        self.commit(&MutationEvent::ResizeForLoad {
            ns,
            instance: instance.to_string(),
            loads: loads.clone(),
            clock_width,
        })
        .map(|_| ())
    }

    /// The apply-side of [`Icdb::resize_for_load_in`].
    pub(crate) fn apply_resize_for_load(
        &mut self,
        ns: NsId,
        instance: &str,
        loads: &LoadSpec,
        clock_width: f64,
    ) -> Result<(), IcdbError> {
        // Disjoint-field borrow: the cell library is only read while the
        // namespace's instance is mutated.
        let Icdb { cells, spaces, .. } = self;
        let inst = spaces
            .get_mut(ns)?
            .instances
            .get_mut(instance)
            .ok_or_else(|| IcdbError::NotFound(format!("instance `{instance}`")))?;
        let goal = icdb_sizing::SizingGoal::clock(clock_width);
        let result = size_netlist(
            &mut inst.netlist,
            cells,
            loads,
            &icdb_sizing::Strategy::Constraints(goal),
        );
        inst.loads = loads.clone();
        inst.report = result.report;
        inst.met = result.met;
        inst.shape = estimate_shape(&inst.netlist, cells, MAX_SHAPE_STRIPS)?;
        Ok(())
    }

    /// The instance named `name`.
    ///
    /// # Errors
    /// `NotFound` if absent.
    pub fn instance(&self, name: &str) -> Result<&ComponentInstance, IcdbError> {
        self.instance_in(NsId::ROOT, name)
    }

    /// The instance named `name` in an explicit namespace.
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent.
    pub fn instance_in(&self, ns: NsId, name: &str) -> Result<&ComponentInstance, IcdbError> {
        self.spaces
            .get(ns)?
            .instances
            .get(name)
            .ok_or_else(|| IcdbError::NotFound(format!("instance `{name}`")))
    }

    /// Names of all generated instances, in creation order.
    pub fn instance_names(&self) -> &[Arc<str>] {
        &self.spaces.root().instance_order
    }

    /// Names of all instances in a namespace, in creation order.
    ///
    /// # Errors
    /// `NotFound` on unknown namespaces.
    pub fn instance_names_in(&self, ns: NsId) -> Result<&[Arc<str>], IcdbError> {
        Ok(&self.spaces.get(ns)?.instance_order)
    }

    /// Deletes an instance and its design data.
    pub(crate) fn delete_instance_in(&mut self, ns: NsId, name: &str) {
        let Ok(space) = self.spaces.get_mut(ns) else {
            return;
        };
        if space.instances.remove(name).is_some() {
            space.instance_order.retain(|n| &**n != name);
            for suffix in INSTANCE_VIEW_SUFFIXES {
                self.files.remove(&Namespace::file_path(ns, name, suffix));
            }
            let _ = self.db.execute(&format!(
                "DELETE FROM instances WHERE name = '{}'",
                Namespace::db_name(ns, name)
            ));
        }
    }

    /// §3.3 delay string (`CW …` / `WD port …` / `SD port …`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn delay_string(&self, name: &str) -> Result<String, IcdbError> {
        self.delay_string_in(NsId::ROOT, name)
    }

    /// Namespace form of [`Icdb::delay_string`].
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent.
    pub fn delay_string_in(&self, ns: NsId, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance_in(ns, name)?.report.to_string())
    }

    /// §3.3 shape-function string (`Alternative=… width=… height=…`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn shape_string(&self, name: &str) -> Result<String, IcdbError> {
        self.shape_string_in(NsId::ROOT, name)
    }

    /// Namespace form of [`Icdb::shape_string`].
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent.
    pub fn shape_string_in(&self, ns: NsId, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance_in(ns, name)?.shape.to_alternative_format())
    }

    /// Appendix-B area string (`strip = … width = … height = … area = …`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn area_string(&self, name: &str) -> Result<String, IcdbError> {
        self.area_string_in(NsId::ROOT, name)
    }

    /// Namespace form of [`Icdb::area_string`].
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent.
    pub fn area_string_in(&self, ns: NsId, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance_in(ns, name)?.shape.to_strip_format())
    }

    /// §4.1 connection string (`## function INC … ** DWUP 0`).
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn connect_string(&self, name: &str) -> Result<String, IcdbError> {
        self.connect_string_in(NsId::ROOT, name)
    }

    /// Namespace form of [`Icdb::connect_string`].
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent.
    pub fn connect_string_in(&self, ns: NsId, name: &str) -> Result<String, IcdbError> {
        Ok(self.instance_in(ns, name)?.connection.to_paper_format())
    }

    /// Structural VHDL of the instance.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_netlist(&self, name: &str) -> Result<String, IcdbError> {
        self.vhdl_netlist_in(NsId::ROOT, name)
    }

    /// Namespace form of [`Icdb::vhdl_netlist`].
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent.
    pub fn vhdl_netlist_in(&self, ns: NsId, name: &str) -> Result<String, IcdbError> {
        Ok(emit_netlist(
            &self.instance_in(ns, name)?.netlist,
            &self.cells,
        ))
    }

    /// VHDL entity head of the instance.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn vhdl_head(&self, name: &str) -> Result<String, IcdbError> {
        self.vhdl_head_in(NsId::ROOT, name)
    }

    /// Namespace form of [`Icdb::vhdl_head`].
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent.
    pub fn vhdl_head_in(&self, ns: NsId, name: &str) -> Result<String, IcdbError> {
        Ok(emit_entity(&self.instance_in(ns, name)?.netlist))
    }

    /// The already-generated CIF of an instance, if any — the warm read
    /// path of [`Icdb::cif_layout`], requiring only `&self` so the service
    /// can answer layout queries under a shared lock.
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent. `Ok(None)` means
    /// the instance exists but no layout has been generated yet.
    pub fn cif_layout_cached_in(
        &self,
        ns: NsId,
        name: &str,
    ) -> Result<Option<Arc<str>>, IcdbError> {
        self.instance_in(ns, name)?; // distinguish "no instance" from "no layout"
        Ok(self
            .files
            .read_shared(&Namespace::file_path(ns, name, "cif"))
            .ok())
    }

    /// The already-generated CIF of a root-namespace instance, if any.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent.
    pub fn cif_layout_cached(&self, name: &str) -> Result<Option<Arc<str>>, IcdbError> {
        self.cif_layout_cached_in(NsId::ROOT, name)
    }

    /// CIF of the instance (generating a default layout on first use). The
    /// warm path is a shared-blob read through [`Icdb::cif_layout_cached`];
    /// only cold generation mutates.
    ///
    /// # Errors
    /// `NotFound` if the instance is absent; layout errors propagate.
    pub fn cif_layout(&mut self, name: &str) -> Result<Arc<str>, IcdbError> {
        self.cif_layout_in(NsId::ROOT, name)
    }

    /// Namespace form of [`Icdb::cif_layout`].
    ///
    /// # Errors
    /// `NotFound` if the namespace or instance is absent; layout errors
    /// propagate.
    pub fn cif_layout_in(&mut self, ns: NsId, name: &str) -> Result<Arc<str>, IcdbError> {
        if let Some(text) = self.cif_layout_cached_in(ns, name)? {
            return Ok(text);
        }
        self.generate_layout_in(ns, name, None, None)
    }

    fn persist_payload(
        &mut self,
        ns: NsId,
        name: &str,
        p: &GenerationPayload,
    ) -> Result<(), IcdbError> {
        self.db.insert(
            "instances",
            vec![
                Value::Text(Namespace::db_name(ns, name)),
                Value::Text(p.implementation.clone()),
                Value::Int(p.netlist.gates.len() as i64),
                Value::Real(p.shape.best_area().map(|a| a.area()).unwrap_or(0.0)),
                Value::Real(p.report.clock_width),
                Value::Int(i64::from(p.met)),
            ],
        )?;
        // Every view below is a pre-rendered shared blob: on the warm path
        // these writes are reference-count bumps, not string copies.
        if let Some(flat) = &p.flat_iif {
            self.files
                .write(Namespace::file_path(ns, name, "iif"), flat.clone());
        }
        if let Some(milo) = &p.milo {
            self.files
                .write(Namespace::file_path(ns, name, "milo"), milo.clone());
        }
        self.files
            .write(Namespace::file_path(ns, name, "vhdl"), p.vhdl.clone());
        self.files.write(
            Namespace::file_path(ns, name, "vhdl_head"),
            p.vhdl_head.clone(),
        );
        self.files.write(
            Namespace::file_path(ns, name, "delay"),
            p.delay_text.clone(),
        );
        self.files.write(
            Namespace::file_path(ns, name, "shape"),
            p.shape_text.clone(),
        );
        Ok(())
    }
}
