//! # icdb-core — the Intelligent Component Database server
//!
//! The system of Chen & Gajski's "An Intelligent Component Database for
//! Behavioral Synthesis" (DAC 1990): a **component server** that delivers
//! components to synthesis tools when given a set of attributes and
//! constraints, replacing fixed component libraries and paper catalogs.
//!
//! An [`Icdb`] owns the two subsystems of the paper's Fig. 2:
//!
//! * the **knowledge base** — a [`GenericComponentLibrary`] of
//!   parameterized IIF implementations (the §3.1 counter, the appendix
//!   adder/addsub/shifter, registers, ALU, comparator, …) with their GENUS
//!   function tags and connection tables, backed by the embedded
//!   relational store and design-data file store of `icdb-store`;
//! * the **component server** — [`Icdb::request_component`] runs the
//!   embedded generation path of Fig. 8 (IIF expansion → logic synthesis →
//!   technology mapping → transistor sizing → delay/shape estimation →
//!   optional strip layout), stores the resulting [`ComponentInstance`],
//!   and answers every query of §3.3 (delay strings, shape functions,
//!   connection info, VHDL views, CIF layouts).
//!
//! The C `ICDB("command:…; key:%s; out:?s", …)` interface is reproduced by
//! [`Icdb::execute`] over `icdb-cql` argument slots; all Appendix-B
//! commands (component/function/instance queries, component requests from
//! library specs, inline IIF or VHDL clusters, and component-list
//! management) are implemented.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use icdb_core::{ComponentRequest, Icdb};
//!
//! let mut icdb = Icdb::new();
//! // The paper's request: a five-bit up counter (§3.2.2).
//! let request = ComponentRequest::by_component("counter")
//!     .attribute("size", "5")
//!     .clock_width(30.0);
//! let counter_ins = icdb.request_component(&request)?;
//! let delay = icdb.delay_string(&counter_ins)?;
//! assert!(delay.contains("CW "));
//! let shape = icdb.shape_string(&counter_ins)?;
//! assert!(shape.contains("Alternative=1"));
//! # Ok(())
//! # }
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod builtin;
mod cql;
mod designs;
mod error;
mod instance;
mod knowledge;
mod library;
mod server;
mod spec;
mod tools;

pub use designs::DesignManager;
pub use error::IcdbError;
pub use instance::ComponentInstance;
pub use library::{ComponentImpl, GenericComponentLibrary, ParamSpec};
pub use spec::{ComponentRequest, Constraints, Source, TargetLevel};
pub use tools::{GeneratorInfo, ToolManager, ToolStep};

use icdb_store::{Database, FileStore};
use std::collections::HashMap;

/// The Intelligent Component Database: knowledge server + component server.
#[derive(Debug, Clone)]
pub struct Icdb {
    /// The generic component library (knowledge base).
    pub library: GenericComponentLibrary,
    /// The characterized basic-cell library used by generation.
    pub cells: icdb_cells::Library,
    /// The relational metadata store (INGRES stand-in).
    pub db: Database,
    /// The design-data file store (UNIX file system stand-in).
    pub files: FileStore,
    /// The tool manager: registered component generators (§4.2).
    pub tools: ToolManager,
    pub(crate) instances: HashMap<String, ComponentInstance>,
    pub(crate) instance_order: Vec<String>,
    pub(crate) counter: u64,
    pub(crate) designs: DesignManager,
    pub(crate) last_flat_iif: Option<String>,
    pub(crate) last_milo: Option<String>,
}

impl Icdb {
    /// A server preloaded with the builtin component implementations and
    /// the standard cell library.
    pub fn new() -> Icdb {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE components (name TEXT, type TEXT, functions TEXT, description TEXT)",
        )
        .expect("fresh database");
        db.execute(
            "CREATE TABLE instances (name TEXT, implementation TEXT, gates INT, \
             area REAL, clock_width REAL, met INT)",
        )
        .expect("fresh database");
        let library = GenericComponentLibrary::standard();
        for imp in library.iter() {
            db.insert(
                "components",
                vec![
                    icdb_store::Value::Text(imp.name.clone()),
                    icdb_store::Value::Text(imp.component_type.clone()),
                    icdb_store::Value::Text(imp.functions.join(" ")),
                    icdb_store::Value::Text(imp.description.clone()),
                ],
            )
            .expect("fresh table");
        }
        Icdb {
            library,
            cells: icdb_cells::Library::standard(),
            db,
            files: FileStore::new(),
            tools: ToolManager::standard(),
            instances: HashMap::new(),
            instance_order: Vec::new(),
            counter: 0,
            designs: DesignManager::default(),
            last_flat_iif: None,
            last_milo: None,
        }
    }
}

impl Default for Icdb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icdb_cql::CqlArg;

    #[test]
    fn new_server_has_catalog_rows() {
        let icdb = Icdb::new();
        let rows = icdb.db.query("SELECT name FROM components").unwrap();
        assert!(rows.len() >= 18);
    }

    #[test]
    fn generate_and_query_counter() {
        let mut icdb = Icdb::new();
        let req = ComponentRequest::by_component("counter")
            .attribute("size", "5")
            .attribute("up_or_down", "3")
            .attribute("enable", "1")
            .attribute("load", "1");
        let name = icdb.request_component(&req).unwrap();
        let inst = icdb.instance(&name).unwrap();
        assert!(
            inst.netlist.gates.len() > 20,
            "{} gates",
            inst.netlist.gates.len()
        );
        assert!(inst.report.clock_width > 0.0);
        let delay = icdb.delay_string(&name).unwrap();
        assert!(delay.contains("CW "), "{delay}");
        assert!(delay.contains("WD Q[4]"), "{delay}");
        assert!(delay.contains("SD DWUP"), "{delay}");
        let shape = icdb.shape_string(&name).unwrap();
        assert!(shape.contains("Alternative=1 width="), "{shape}");
        let connect = icdb.connect_string(&name).unwrap();
        assert!(connect.contains("## function INC"), "{connect}");
        assert!(connect.contains("** DWUP 0"), "{connect}");
    }

    #[test]
    fn request_via_cql_round_trip() {
        let mut icdb = Icdb::new();
        // The §3.2.2 query, with the delay-constraint text as a %s input.
        let mut args = vec![
            CqlArg::InStr("rdelay Q[4] 10\noload Q[4] 10".into()),
            CqlArg::OutStr(None),
        ];
        icdb.execute(
            "command:request_component;
             component_name:counter;
             attribute:(size:5);
             function:(INC);
             clock_width:30;
             comb_delay:%s;
             set_up_time:30;
             generated_component:?s",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStr(Some(name)) = &args[1] else {
            panic!("no instance name")
        };
        // Instance query for delay + shape (the §3.3 query).
        let mut args2 = vec![
            CqlArg::InStr(name.clone()),
            CqlArg::OutStr(None),
            CqlArg::OutStr(None),
        ];
        icdb.execute(
            "command:instance_query; generated_component:%s; delay:?s; shape_function:?s",
            &mut args2,
        )
        .unwrap();
        let CqlArg::OutStr(Some(delay)) = &args2[1] else {
            panic!()
        };
        assert!(delay.contains("CW "));
        let CqlArg::OutStr(Some(shape)) = &args2[2] else {
            panic!()
        };
        assert!(shape.contains("Alternative="));
    }

    #[test]
    fn component_and_function_queries() {
        let mut icdb = Icdb::new();
        let mut args = vec![CqlArg::OutStrList(None)];
        icdb.execute(
            "command:component_query; component:counter; function:(INC);
             attribute:(size:5); ICDB_components:?s[]",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStrList(Some(counters)) = &args[0] else {
            panic!()
        };
        assert!(counters.contains(&"COUNTER".to_string()), "{counters:?}");

        let mut args = vec![CqlArg::OutStrList(None)];
        icdb.execute(
            "command:function_query; function:(ADD,SUB); implementation:?s[]",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStrList(Some(impls)) = &args[0] else {
            panic!()
        };
        assert!(impls.contains(&"ADDSUB".to_string()), "{impls:?}");
        assert!(impls.contains(&"ALU".to_string()), "{impls:?}");
        assert!(
            !impls.contains(&"ADDER".to_string()),
            "ADD∧SUB excludes plain adder"
        );
    }

    #[test]
    fn design_transactions_clean_up() {
        let mut icdb = Icdb::new();
        icdb.start_design("cpu").unwrap();
        icdb.start_transaction("cpu").unwrap();
        let keep = icdb
            .request_component(&ComponentRequest::by_implementation("ADDER"))
            .unwrap();
        let drop = icdb
            .request_component(&ComponentRequest::by_implementation("REGISTER"))
            .unwrap();
        icdb.put_in_component_list("cpu", &keep).unwrap();
        let removed = icdb.end_transaction("cpu").unwrap();
        assert_eq!(removed, 1);
        assert!(icdb.instance(&keep).is_ok());
        assert!(icdb.instance(&drop).is_err());
        let removed = icdb.end_design("cpu").unwrap();
        assert_eq!(removed, 1);
        assert!(icdb.instance(&keep).is_err());
    }
}
