//! # icdb-core — the Intelligent Component Database server
//!
//! The system of Chen & Gajski's "An Intelligent Component Database for
//! Behavioral Synthesis" (DAC 1990): a **component server** that delivers
//! components to synthesis tools when given a set of attributes and
//! constraints, replacing fixed component libraries and paper catalogs.
//!
//! An [`Icdb`] owns the two subsystems of the paper's Fig. 2:
//!
//! * the **knowledge base** — a [`GenericComponentLibrary`] of
//!   parameterized IIF implementations (the §3.1 counter, the appendix
//!   adder/addsub/shifter, registers, ALU, comparator, …) with their GENUS
//!   function tags and connection tables, backed by the embedded
//!   relational store and design-data file store of `icdb-store`;
//! * the **component server** — [`Icdb::request_component`] runs the
//!   embedded generation path of Fig. 8 (IIF expansion → logic synthesis →
//!   technology mapping → transistor sizing → delay/shape estimation →
//!   optional strip layout), stores the resulting [`ComponentInstance`],
//!   and answers every query of §3.3 (delay strings, shape functions,
//!   connection info, VHDL views, CIF layouts).
//!
//! The C `ICDB("command:…; key:%s; out:?s", …)` interface is reproduced by
//! [`Icdb::execute`] over `icdb-cql` argument slots; all Appendix-B
//! commands (component/function/instance queries, component requests from
//! library specs, inline IIF or VHDL clusters, and component-list
//! management) are implemented.
//!
//! Generation is memoized by the three-layer, content-addressed
//! [`cache`] (canonical [`RequestKey`]s → expanded modules → synthesized
//! netlists → complete payloads), so repeat requests are ~free;
//! [`Icdb::request_components_batch`] fans cold requests out across scoped
//! threads sharing that cache, and [`Icdb::cache_stats`] / the
//! `cache_query` CQL command / the relational `cache_stats` table expose
//! its hit/miss/eviction counters.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use icdb_core::{ComponentRequest, Icdb};
//!
//! let mut icdb = Icdb::new();
//! // The paper's request: a five-bit up counter (§3.2.2).
//! let request = ComponentRequest::by_component("counter")
//!     .attribute("size", "5")
//!     .clock_width(30.0);
//! let counter_ins = icdb.request_component(&request)?;
//! let delay = icdb.delay_string(&counter_ins)?;
//! assert!(delay.contains("CW "));
//! let shape = icdb.shape_string(&counter_ins)?;
//! assert!(shape.contains("Alternative=1"));
//! # Ok(())
//! # }
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod builtin;
pub mod cache;
pub mod corpus;
mod cql;
mod designs;
mod error;
mod events;
pub mod explore;
mod instance;
mod knowledge;
mod library;
mod obs;
mod persist;
mod server;
pub mod service;
mod space;
mod spec;
mod tools;

pub use cache::{CacheStats, GenCache, GenerationPayload, LayerStats, RequestKey};
pub use corpus::CorpusStats;
pub use cql::command_text_is_read_only;
pub use designs::DesignManager;
pub use error::IcdbError;
pub use events::{Applied, MutationEvent};
pub use explore::{ExploreSpec, SweepStats};
pub use icdb_explore::{DesignPoint, ExplorationReport, Explorer, Objective};
pub use instance::ComponentInstance;
pub use library::{ComponentImpl, GenericComponentLibrary, ParamSpec};
pub use persist::PersistStats;
pub use service::{IcdbService, ReplSnapshot, Session};
pub use space::NsId;
pub use spec::{ComponentRequest, Constraints, Source, TargetLevel};
pub use tools::{GeneratorInfo, ToolManager, ToolStep};

use icdb_store::{Database, FileStore, Value};
use std::sync::Arc;

/// The Intelligent Component Database: knowledge server + component server.
///
/// Per-caller state (generated instances, naming counters, designs) lives
/// in [`NsId`]-addressed namespaces; the classic single-caller methods all
/// operate on [`NsId::ROOT`], while the `*_in` variants and the concurrent
/// [`IcdbService`] address explicit session namespaces over the same
/// shared knowledge base.
#[derive(Debug)]
pub struct Icdb {
    /// The generic component library (knowledge base).
    pub library: GenericComponentLibrary,
    /// The characterized basic-cell library used by generation.
    pub cells: icdb_cells::Library,
    /// The relational metadata store (INGRES stand-in).
    pub db: Database,
    /// The design-data file store (UNIX file system stand-in).
    pub files: FileStore,
    /// The tool manager: registered component generators (§4.2).
    pub tools: ToolManager,
    pub(crate) cache: Arc<GenCache>,
    /// The durable exploration corpus (shared with epoch snapshots, so
    /// lock-free sweeps record into — and read from — the live corpus).
    pub(crate) corpus: Arc<corpus::CorpusState>,
    pub(crate) spaces: space::Spaces,
    /// Attached mutation journal, when the server was opened with a data
    /// directory ([`Icdb::open`]).
    pub(crate) journal: Option<persist::Journal>,
    /// Acquired (non-builtin) knowledge, kept as replayable source text so
    /// snapshots can rebuild the library.
    pub(crate) acquired: Vec<persist::AcquiredKnowledge>,
    /// When `Some`, commits buffer their WAL durability tickets here
    /// instead of waiting inline — the service's deferred-durability mode
    /// (fsync waits happen outside its locks; see `Icdb::begin_deferred`).
    pub(crate) deferred_waits: Option<Vec<persist::WalTicket>>,
    /// When `Some`, this server is a replication follower tailing the
    /// named upstream: direct mutations are refused (`NotPrimary`), all
    /// writes arrive as replicated events, and sessions open ephemeral
    /// namespaces. Cleared by promotion ([`Icdb::promote_journal`]).
    pub(crate) repl: Option<persist::ReplState>,
}

// Manual impl: a clone gets its own *empty* generation cache rather than
// sharing the original's. Two clones may mutate their libraries
// independently, and library version counters are only meaningful within
// one library's history — sharing entries across divergent libraries could
// serve stale payloads. The journal (an exclusive file handle) stays with
// the original: a clone is an in-memory fork, not a second writer racing
// on the same WAL.
impl Clone for Icdb {
    fn clone(&self) -> Icdb {
        Icdb {
            library: self.library.clone(),
            cells: self.cells.clone(),
            db: self.db.clone(),
            files: self.files.clone(),
            tools: self.tools.clone(),
            cache: Arc::new(GenCache::with_capacity(self.cache.stats().result.capacity)),
            corpus: Arc::new(self.corpus.deep_clone()),
            spaces: self.spaces.clone(),
            journal: None,
            acquired: self.acquired.clone(),
            deferred_waits: None,
            repl: None,
        }
    }
}

impl Icdb {
    /// A server preloaded with the builtin component implementations and
    /// the standard cell library.
    pub fn new() -> Icdb {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE components (name TEXT, type TEXT, functions TEXT, description TEXT)",
        )
        .expect("fresh database");
        db.execute(
            "CREATE TABLE instances (name TEXT, implementation TEXT, gates INT, \
             area REAL, clock_width REAL, met INT)",
        )
        .expect("fresh database");
        db.execute(
            "CREATE TABLE cache_stats (layer TEXT, hits INT, misses INT, \
             evictions INT, entries INT, capacity INT)",
        )
        .expect("fresh database");
        db.execute(
            "CREATE TABLE exploration (candidate TEXT, implementation TEXT, width INT, \
             strategy TEXT, area REAL, delay REAL, power REAL, gates INT, met INT, \
             pareto INT, winner INT)",
        )
        .expect("fresh database");
        let library = GenericComponentLibrary::standard();
        for imp in library.iter() {
            db.insert(
                "components",
                vec![
                    icdb_store::Value::Text(imp.name.clone()),
                    icdb_store::Value::Text(imp.component_type.clone()),
                    icdb_store::Value::Text(imp.functions.join(" ")),
                    icdb_store::Value::Text(imp.description.clone()),
                ],
            )
            .expect("fresh table");
        }
        Icdb {
            library,
            cells: icdb_cells::Library::standard(),
            db,
            files: FileStore::new(),
            tools: ToolManager::standard(),
            cache: Arc::new(GenCache::default()),
            corpus: Arc::new(corpus::CorpusState::default()),
            spaces: space::Spaces::new(),
            journal: None,
            acquired: Vec::new(),
            deferred_waits: None,
            repl: None,
        }
    }

    /// A read-only *epoch snapshot* of the knowledge side of this server:
    /// cloned library, cell library and tool registry, the **shared**
    /// generation cache (the cache is internally synchronized and its
    /// keys embed the knowledge versions, so warm entries stay valid
    /// exactly as long as the snapshot itself), and fresh empty
    /// namespaces/stores. The service hands an `Arc` of this to warm
    /// prepares, exploration sweeps and knowledge-only CQL queries so
    /// they run without taking *any* service lock; a snapshot is stale —
    /// and gets rebuilt — the moment knowledge acquisition bumps the
    /// library or cell versions.
    ///
    /// Only knowledge/cache state is meaningful here: instance data,
    /// the relational catalog and the file store are empty, so the
    /// snapshot must never serve instance queries.
    pub(crate) fn read_snapshot(&self) -> Icdb {
        Icdb {
            library: self.library.clone(),
            cells: self.cells.clone(),
            db: Database::new(),
            files: FileStore::new(),
            tools: self.tools.clone(),
            cache: Arc::clone(&self.cache),
            corpus: Arc::clone(&self.corpus),
            spaces: space::Spaces::new(),
            journal: None,
            acquired: Vec::new(),
            deferred_waits: None,
            repl: None,
        }
    }

    /// Opens a fresh session namespace: an isolated instance list, naming
    /// counter and design manager over this server's shared knowledge base.
    /// Journaled ([`MutationEvent::CreateNamespace`]): ids are assigned in
    /// journal order, so recovery reproduces them and a reconnecting
    /// client can re-attach to its pre-crash namespace.
    pub fn create_namespace(&mut self) -> NsId {
        // Followers allocate from the ephemeral range instead: journaling
        // a local CreateNamespace would desynchronize the namespace-id
        // counter from the primary's replicated events, and a follower
        // session is read-only scratch state anyway.
        if self.repl.is_some() {
            return self.spaces.create_ephemeral();
        }
        // Degraded tolerance: a faulted journal refuses the enqueue, but
        // sessions must keep opening — reads still serve. The in-memory
        // apply proceeds either way; this cannot desynchronize replayed
        // ids, because a faulted log journals nothing until the
        // re-arming checkpoint snapshots the full state (this namespace
        // and the advanced id counter included).
        let event = MutationEvent::CreateNamespace;
        let ticket = self.journal_submit(&event).ok().flatten();
        let ns = self
            .apply(&event)
            .expect("namespace creation is infallible in memory")
            .into_namespace()
            .expect("CreateNamespace applies to a namespace");
        // A durability failure here degrades the server but must not
        // panic: the session keeps its (memory-only) namespace, which a
        // recovery that never re-armed simply forgets — it acknowledged
        // no commits.
        let _ = self.settle_ticket(ticket);
        ns
    }

    /// Closes a session namespace, deleting every instance it still holds
    /// (design data and relational rows included); returns how many
    /// instances were deleted. Dropping [`NsId::ROOT`] is a no-op.
    pub fn drop_namespace(&mut self, ns: NsId) -> usize {
        // As `create_namespace`: journal failures degrade, never panic.
        // Ephemeral (follower-session) namespaces were never journaled,
        // so their drop isn't either — even after a promotion.
        // A follower never drops a *replicated* namespace locally (e.g. a
        // follower-side session detaching from one): the authoritative
        // drop arrives through the replication stream, and removing the
        // namespace early would make later replicated events diverge.
        if self.repl.is_some() && !ns.is_ephemeral() {
            return 0;
        }
        let event = MutationEvent::DropNamespace { ns };
        let ticket = if ns.is_ephemeral() {
            None
        } else {
            self.journal_submit(&event).ok().flatten()
        };
        let n = self
            .apply(&event)
            .expect("namespace drop is infallible in memory")
            .into_deleted()
            .expect("DropNamespace applies to a deletion count");
        let _ = self.settle_ticket(ticket);
        n
    }

    /// The apply-side of [`Icdb::drop_namespace`] (shared with recovery
    /// replay).
    pub(crate) fn apply_drop_namespace(&mut self, ns: NsId) -> usize {
        let Some(space) = self.spaces.remove(ns) else {
            return 0;
        };
        let names = space.instance_order.clone();
        // The namespace is already detached; clean its design data out of
        // the shared stores directly.
        for name in &names {
            for suffix in crate::server::INSTANCE_VIEW_SUFFIXES {
                self.files
                    .remove(&space::Namespace::file_path(ns, name, suffix));
            }
            let _ = self.db.execute(&format!(
                "DELETE FROM instances WHERE name = '{}'",
                space::Namespace::db_name(ns, name)
            ));
        }
        names.len()
    }

    /// Ids of all live namespaces (root included), in ascending order.
    pub fn namespace_ids(&self) -> Vec<NsId> {
        self.spaces.ids()
    }

    /// Number of live namespaces, root included.
    pub fn namespace_count(&self) -> usize {
        self.spaces.len()
    }

    /// The namespace's commit counter: how many namespace-scoped
    /// mutations have successfully applied in `ns` over its lifetime.
    /// Echoed in mutation acks (`OK <n> commit:<seq>`) so a client can
    /// detect whether an ambiguously-dropped commit landed before
    /// retrying it.
    ///
    /// # Errors
    /// [`IcdbError::NotFound`] for a dead namespace.
    pub fn commit_seq_in(&self, ns: NsId) -> Result<u64, IcdbError> {
        Ok(self.spaces.get(ns)?.commits)
    }

    /// Snapshot of the generation-cache statistics (per-layer hits, misses,
    /// evictions, entries and capacity).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Rebounds every generation-cache layer to `capacity` entries,
    /// evicting least-recently-used entries when shrinking. A capacity of
    /// zero disables caching.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// Drops every generation-cache entry (statistics are kept), forcing
    /// the next requests down the cold path.
    pub fn clear_generation_cache(&mut self) {
        self.cache.clear();
    }

    /// Refreshes the relational `cache_stats` table from the live counters,
    /// so the statistics are queryable through the store layer
    /// (`SELECT hits FROM cache_stats WHERE layer = 'result'`).
    ///
    /// # Errors
    /// Propagates store errors (the table exists on every fresh server).
    pub fn publish_cache_stats(&mut self) -> Result<(), IcdbError> {
        let stats = self.cache.stats();
        // The live counters are volatile (a recovered server restarts them
        // cold), so the journal records the computed *rows*: replay
        // restores the table exactly as the last publish left it.
        let rows = [
            ("flat", stats.flat),
            ("netlist", stats.netlist),
            ("result", stats.result),
        ]
        .into_iter()
        .map(|(layer, s)| {
            vec![
                Value::Text(layer.to_string()),
                Value::Int(s.hits as i64),
                Value::Int(s.misses as i64),
                Value::Int(s.evictions as i64),
                Value::Int(s.entries as i64),
                Value::Int(s.capacity as i64),
            ]
        })
        .collect();
        self.commit(&MutationEvent::PublishTable {
            table: "cache_stats".to_string(),
            rows,
        })?;
        Ok(())
    }
}

impl Default for Icdb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icdb_cql::CqlArg;

    #[test]
    fn new_server_has_catalog_rows() {
        let icdb = Icdb::new();
        let rows = icdb.db.query("SELECT name FROM components").unwrap();
        assert!(rows.len() >= 18);
    }

    #[test]
    fn generate_and_query_counter() {
        let mut icdb = Icdb::new();
        let req = ComponentRequest::by_component("counter")
            .attribute("size", "5")
            .attribute("up_or_down", "3")
            .attribute("enable", "1")
            .attribute("load", "1");
        let name = icdb.request_component(&req).unwrap();
        let inst = icdb.instance(&name).unwrap();
        assert!(
            inst.netlist.gates.len() > 20,
            "{} gates",
            inst.netlist.gates.len()
        );
        assert!(inst.report.clock_width > 0.0);
        let delay = icdb.delay_string(&name).unwrap();
        assert!(delay.contains("CW "), "{delay}");
        assert!(delay.contains("WD Q[4]"), "{delay}");
        assert!(delay.contains("SD DWUP"), "{delay}");
        let shape = icdb.shape_string(&name).unwrap();
        assert!(shape.contains("Alternative=1 width="), "{shape}");
        let connect = icdb.connect_string(&name).unwrap();
        assert!(connect.contains("## function INC"), "{connect}");
        assert!(connect.contains("** DWUP 0"), "{connect}");
    }

    #[test]
    fn request_via_cql_round_trip() {
        let mut icdb = Icdb::new();
        // The §3.2.2 query, with the delay-constraint text as a %s input.
        let mut args = vec![
            CqlArg::InStr("rdelay Q[4] 10\noload Q[4] 10".into()),
            CqlArg::OutStr(None),
        ];
        icdb.execute(
            "command:request_component;
             component_name:counter;
             attribute:(size:5);
             function:(INC);
             clock_width:30;
             comb_delay:%s;
             set_up_time:30;
             generated_component:?s",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStr(Some(name)) = &args[1] else {
            panic!("no instance name")
        };
        // Instance query for delay + shape (the §3.3 query).
        let mut args2 = vec![
            CqlArg::InStr(name.clone()),
            CqlArg::OutStr(None),
            CqlArg::OutStr(None),
        ];
        icdb.execute(
            "command:instance_query; generated_component:%s; delay:?s; shape_function:?s",
            &mut args2,
        )
        .unwrap();
        let CqlArg::OutStr(Some(delay)) = &args2[1] else {
            panic!()
        };
        assert!(delay.contains("CW "));
        let CqlArg::OutStr(Some(shape)) = &args2[2] else {
            panic!()
        };
        assert!(shape.contains("Alternative="));
    }

    #[test]
    fn component_and_function_queries() {
        let mut icdb = Icdb::new();
        let mut args = vec![CqlArg::OutStrList(None)];
        icdb.execute(
            "command:component_query; component:counter; function:(INC);
             attribute:(size:5); ICDB_components:?s[]",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStrList(Some(counters)) = &args[0] else {
            panic!()
        };
        assert!(counters.contains(&"COUNTER".to_string()), "{counters:?}");

        let mut args = vec![CqlArg::OutStrList(None)];
        icdb.execute(
            "command:function_query; function:(ADD,SUB); implementation:?s[]",
            &mut args,
        )
        .unwrap();
        let CqlArg::OutStrList(Some(impls)) = &args[0] else {
            panic!()
        };
        assert!(impls.contains(&"ADDSUB".to_string()), "{impls:?}");
        assert!(impls.contains(&"ALU".to_string()), "{impls:?}");
        assert!(
            !impls.contains(&"ADDER".to_string()),
            "ADD∧SUB excludes plain adder"
        );
    }

    #[test]
    fn repeat_requests_hit_the_generation_cache() {
        let mut icdb = Icdb::new();
        let req = ComponentRequest::by_component("counter").attribute("size", "4");
        let first = icdb.request_component(&req).unwrap();
        let second = icdb.request_component(&req).unwrap();
        assert_ne!(first, second);
        let stats = icdb.cache_stats();
        assert_eq!(stats.result.misses, 1);
        assert_eq!(stats.result.hits, 1);
        assert_eq!(
            icdb.delay_string(&first).unwrap(),
            icdb.delay_string(&second).unwrap()
        );
        // Equivalent phrasings canonicalize onto the same entry.
        let req2 = ComponentRequest::by_implementation("COUNTER").attribute("size", "4");
        icdb.request_component(&req2).unwrap();
        assert_eq!(icdb.cache_stats().result.hits, 2);
    }

    #[test]
    fn knowledge_acquisition_invalidates_cache_entries() {
        let mut icdb = Icdb::new();
        let req = ComponentRequest::by_implementation("ADDER").attribute("size", "4");
        icdb.request_component(&req).unwrap();
        assert_eq!(icdb.cache_stats().result.misses, 1);
        // Inserting an implementation bumps the library version, so the
        // old entry's key can no longer be produced: the repeat is a miss,
        // never a stale hit.
        icdb.insert_implementation(
            "NAME: TINY; INORDER: A, B; OUTORDER: O; { O = A * B; }",
            "Logic_unit",
            &["AND"],
            &[],
            None,
            "test",
        )
        .unwrap();
        icdb.request_component(&req).unwrap();
        let stats = icdb.cache_stats();
        assert_eq!(stats.result.hits, 0);
        assert_eq!(stats.result.misses, 2);
    }

    #[test]
    fn batch_with_zero_workers_is_clamped_to_sequential() {
        let requests = vec![
            ComponentRequest::by_implementation("ADDER").attribute("size", "3"),
            ComponentRequest::by_component("counter").attribute("size", "3"),
        ];
        let mut seq = Icdb::new();
        let seq_names = seq.request_components_batch(&requests, 1).unwrap();
        // workers == 0 must not spawn a zero-worker scope (which would
        // leave every result slot unfilled and panic): it runs
        // sequentially and produces identical instances.
        let mut zero = Icdb::new();
        let zero_names = zero.request_components_batch(&requests, 0).unwrap();
        assert_eq!(seq_names, zero_names);
        for name in &seq_names {
            assert_eq!(
                seq.delay_string(name).unwrap(),
                zero.delay_string(name).unwrap()
            );
        }
    }

    #[test]
    fn design_transactions_clean_up() {
        let mut icdb = Icdb::new();
        icdb.start_design("cpu").unwrap();
        icdb.start_transaction("cpu").unwrap();
        let keep = icdb
            .request_component(&ComponentRequest::by_implementation("ADDER"))
            .unwrap();
        let drop = icdb
            .request_component(&ComponentRequest::by_implementation("REGISTER"))
            .unwrap();
        icdb.put_in_component_list("cpu", &keep).unwrap();
        let removed = icdb.end_transaction("cpu").unwrap();
        assert_eq!(removed, 1);
        assert!(icdb.instance(&keep).is_ok());
        assert!(icdb.instance(&drop).is_err());
        let removed = icdb.end_design("cpu").unwrap();
        assert_eq!(removed, 1);
        assert!(icdb.instance(&keep).is_err());
    }
}
