//! The builtin parameterized component implementations: the IIF sources
//! under `crates/core/iif/` registered with their GENUS metadata and
//! connection tables (paper §3.1 counter, Appendix A adder / addsub /
//! shifter / AND examples, and the rest of the predefined component list).

use crate::library::{ComponentImpl, ParamSpec};
use icdb_genus::ConnectionTable;

struct BuiltinDef {
    source: &'static str,
    component_type: &'static str,
    functions: &'static [&'static str],
    params: &'static [(&'static str, i64)],
    connection: &'static str,
    description: &'static str,
}

fn defs() -> Vec<BuiltinDef> {
    vec![
        BuiltinDef {
            source: include_str!("../iif/counter.iif"),
            component_type: "Counter",
            functions: &["INC", "DEC", "COUNTER", "STORAGE", "LOAD", "STORE"],
            params: &[
                ("size", 4),
                ("type", 2),
                ("load", 0),
                ("enable", 0),
                ("up_or_down", 1),
            ],
            connection: "\
## function INC
O0 is Q
** DWUP 0
** ENA 1
** LOAD 1
** CLK 1 edge_trigger
## function DEC
O0 is Q
** DWUP 1
** ENA 1
** LOAD 1
** CLK 1 edge_trigger
## function LOAD
I0 is D
O0 is Q
** LOAD 0
",
            description: "n-bit ripple/synchronous counter with optional enable, \
                          asynchronous parallel load and up/down control (paper §3.1)",
        },
        BuiltinDef {
            source: include_str!("../iif/ripple_counter.iif"),
            component_type: "Counter",
            functions: &["INC", "COUNTER"],
            params: &[("size", 4)],
            connection: "\
## function INC
O0 is Q
** CLK 1 edge_trigger
",
            description: "toggle-chain ripple up counter",
        },
        BuiltinDef {
            source: include_str!("../iif/johnson_counter.iif"),
            component_type: "Counter",
            functions: &["COUNTER"],
            params: &[("size", 4)],
            connection: "\
## function COUNTER
O0 is Q
** RST 1
** CLK 1 edge_trigger
",
            description: "Johnson (twisted-ring) counter: glitch-free 2n-state \
                          sequence, one flip-flop per bit and no carry chain",
        },
        BuiltinDef {
            source: include_str!("../iif/adder.iif"),
            component_type: "Adder",
            functions: &["ADD"],
            params: &[("size", 4)],
            connection: "\
## function ADD
I0 is I0
I1 is I1
Cin is Cin
O0 is O
O1 is Cout
",
            description: "n-bit ripple-carry adder (paper Appendix A example 2)",
        },
        BuiltinDef {
            source: include_str!("../iif/addsub.iif"),
            component_type: "Adder_Subtractor",
            functions: &["ADD", "SUB"],
            params: &[("size", 4)],
            connection: "\
## function ADD
I0 is A
I1 is B
O0 is O
** ADDSUBCTL 0
## function SUB
I0 is A
I1 is B
O0 is O
** ADDSUBCTL 1
",
            description: "adder/subtractor built from ADDER by call-by-name \
                          (paper Appendix A example 3)",
        },
        BuiltinDef {
            source: include_str!("../iif/register.iif"),
            component_type: "Register",
            functions: &["STORAGE", "LOAD", "STORE"],
            params: &[("size", 4)],
            connection: "\
## function LOAD
I0 is D
O0 is Q
** LOAD 1
** CLK 1 edge_trigger
## function STORE
O0 is Q
** LOAD 0
",
            description: "register with synchronous parallel load \
                          (paper Appendix A example 1)",
        },
        BuiltinDef {
            source: include_str!("../iif/incrementer.iif"),
            component_type: "Adder",
            functions: &["INC"],
            params: &[("size", 4)],
            connection: "\
## function INC
I0 is I
O0 is O
** EN 1
",
            description: "half-adder chain incrementer",
        },
        BuiltinDef {
            source: include_str!("../iif/comparator.iif"),
            component_type: "Comparator",
            functions: &["EQ", "NEQ", "GT", "GE", "LT", "LE"],
            params: &[("size", 4)],
            connection: "\
## function EQ
I0 is A
I1 is B
O0 is OEQ
## function GT
I0 is A
I1 is B
O0 is OGT
",
            description: "magnitude comparator with all six relations",
        },
        BuiltinDef {
            source: include_str!("../iif/shifter.iif"),
            component_type: "Shifter",
            functions: &["SHL"],
            params: &[("size", 4), ("shift_distance", 1)],
            connection: "\
## function SHL
I0 is I
O0 is O
",
            description: "constant-distance left shifter, zero fill \
                          (paper Appendix A example 4)",
        },
        BuiltinDef {
            source: include_str!("../iif/mux.iif"),
            component_type: "Mux_scl",
            functions: &["MUX_SCL"],
            params: &[("size", 4)],
            connection: "\
## function MUX_SCL
I0 is I0
I1 is I1
O0 is O
** S 0
",
            description: "n-bit 2-to-1 multiplexer, select by control line",
        },
        BuiltinDef {
            source: include_str!("../iif/decoder.iif"),
            component_type: "Decode",
            functions: &["DECODE"],
            params: &[("n", 3)],
            connection: "\
## function DECODE
I0 is I
O0 is O
** EN 1
",
            description: "n-to-2^n decoder with enable",
        },
        BuiltinDef {
            source: include_str!("../iif/encoder.iif"),
            component_type: "Encode",
            functions: &["ENCODE"],
            params: &[("n", 3)],
            connection: "\
## function ENCODE
I0 is I
O0 is O
",
            description: "2^n-to-n binary encoder",
        },
        BuiltinDef {
            source: include_str!("../iif/logic_unit.iif"),
            component_type: "Logic_unit",
            functions: &["AND", "OR", "XOR", "NOT"],
            params: &[("size", 4)],
            connection: "\
## function AND
I0 is A
I1 is B
O0 is O
** C1 0
** C0 0
## function OR
I0 is A
I1 is B
O0 is O
** C1 0
** C0 1
## function XOR
I0 is A
I1 is B
O0 is O
** C1 1
** C0 0
## function NOT
I0 is A
O0 is O
** C1 1
** C0 1
",
            description: "n-bit logic unit (AND/OR/XOR/NOT by control code)",
        },
        BuiltinDef {
            source: include_str!("../iif/alu.iif"),
            component_type: "ALU",
            functions: &["ADD", "SUB", "AND", "OR", "XOR", "NOT"],
            params: &[("size", 4)],
            connection: "\
## function ADD
I0 is A
I1 is B
O0 is O
** MODE 0
** ASCTL 0
## function SUB
I0 is A
I1 is B
O0 is O
** MODE 0
** ASCTL 1
## function AND
I0 is A
I1 is B
O0 is O
** MODE 1
** C1 0
** C0 0
## function OR
I0 is A
I1 is B
O0 is O
** MODE 1
** C1 0
** C0 1
## function XOR
I0 is A
I1 is B
O0 is O
** MODE 1
** C1 1
** C0 0
",
            description: "n-bit ALU: add/sub plus logic unit behind an output mux",
        },
        BuiltinDef {
            source: include_str!("../iif/shift_register.iif"),
            component_type: "Register",
            functions: &["SHL1", "STORAGE", "LOAD"],
            params: &[("size", 4)],
            connection: "\
## function SHL1
O0 is Q
** LOAD 0
** CLK 1 edge_trigger
## function LOAD
I0 is D
O0 is Q
** LOAD 1
** CLK 1 edge_trigger
",
            description: "shift register with parallel load",
        },
        BuiltinDef {
            source: include_str!("../iif/tristate_driver.iif"),
            component_type: "Tri_state",
            functions: &["TRI_STATE"],
            params: &[("size", 4)],
            connection: "\
## function TRI_STATE
I0 is D
O0 is O
** EN 1
",
            description: "n-bit tri-state bus driver",
        },
        BuiltinDef {
            source: include_str!("../iif/parity.iif"),
            component_type: "Logic_unit",
            functions: &["XOR"],
            params: &[("size", 4)],
            connection: "\
## function XOR
I0 is I
O0 is O
",
            description: "n-input parity tree (aggregate XOR)",
        },
        BuiltinDef {
            source: include_str!("../iif/and_gate.iif"),
            component_type: "Logic_unit",
            functions: &["AND"],
            params: &[("size", 4)],
            connection: "\
## function AND
I0 is I0
O0 is O
",
            description: "variable-input AND (paper Appendix A example 5)",
        },
        BuiltinDef {
            source: include_str!("../iif/or_gate.iif"),
            component_type: "Logic_unit",
            functions: &["OR"],
            params: &[("size", 4)],
            connection: "\
## function OR
I0 is I0
O0 is O
",
            description: "variable-input OR (aggregate OR)",
        },
        BuiltinDef {
            source: include_str!("../iif/csel_adder.iif"),
            component_type: "Adder",
            functions: &["ADD"],
            params: &[("size", 8), ("block", 4)],
            connection: "\
## function ADD
I0 is I0
I1 is I1
Cin is Cin
O0 is O
O1 is Cout
",
            description: "carry-select adder: twin ripple blocks muxed by the block carry",
        },
        BuiltinDef {
            source: include_str!("../iif/barrel_rotator.iif"),
            component_type: "Barrel_shifter",
            functions: &["ROTL"],
            params: &[("size", 8), ("stages", 3)],
            connection: "\
## function ROTL
I0 is I
O0 is O
",
            description: "logarithmic barrel rotator (rotate-left by S)",
        },
        BuiltinDef {
            source: include_str!("../iif/register_file.iif"),
            component_type: "Register_file",
            functions: &["STORAGE", "READ", "WRITE"],
            params: &[("size", 4), ("abits", 2)],
            connection: "\
## function WRITE
I0 is D
** WE 1
** CLK 1 edge_trigger
## function READ
O0 is Q
",
            description: "2^abits-word register file with one write and one read port",
        },
    ]
}

/// Parses and packages every builtin implementation.
///
/// # Panics
/// Panics if a builtin IIF source or connection table fails to parse;
/// covered by the crate tests, so failures surface at development time.
pub fn builtins() -> Vec<ComponentImpl> {
    defs()
        .into_iter()
        .map(|d| {
            let module = icdb_iif::parse(d.source)
                .unwrap_or_else(|e| panic!("builtin IIF failed to parse: {e}"));
            let connection = ConnectionTable::parse(d.connection)
                .unwrap_or_else(|e| panic!("builtin connection table malformed: {e}"));
            ComponentImpl {
                name: module.name.clone(),
                component_type: d.component_type.to_string(),
                functions: d.functions.iter().map(|s| s.to_string()).collect(),
                module,
                params: d
                    .params
                    .iter()
                    .map(|&(name, default)| ParamSpec {
                        name: name.to_string(),
                        default,
                    })
                    .collect(),
                connection,
                description: d.description.to_string(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icdb_iif::{expand, NoModules};

    #[test]
    fn all_builtins_parse_and_carry_metadata() {
        let all = builtins();
        assert!(all.len() >= 18);
        for b in &all {
            assert!(!b.functions.is_empty(), "{} needs function tags", b.name);
            assert!(!b.description.is_empty());
            for p in &b.params {
                assert!(
                    b.module.parameters.contains(&p.name),
                    "{}: param {} not in IIF",
                    b.name,
                    p.name
                );
            }
            assert_eq!(
                b.params.len(),
                b.module.parameters.len(),
                "{}: every IIF parameter needs a default",
                b.name
            );
        }
    }

    #[test]
    fn standalone_builtins_expand_with_defaults() {
        // Builtins without subfunction dependencies expand in isolation.
        for b in builtins() {
            if !b.module.subfunctions.is_empty() {
                continue;
            }
            let params: Vec<(&str, i64)> = b
                .params
                .iter()
                .map(|p| (p.name.as_str(), p.default))
                .collect();
            let flat = expand(&b.module, &params, &NoModules)
                .unwrap_or_else(|e| panic!("{} failed to expand: {e}", b.name));
            assert!(!flat.outputs.is_empty(), "{}", b.name);
        }
    }
}
