//! # icdb-genus — the generic component taxonomy
//!
//! ICDB classifies and retrieves components "by either a component type or
//! the functions they perform" (paper §4.1), deferring the vocabulary to
//! the GENUS generic component library \[Dutt88\]. This crate encodes the
//! subset the paper itself enumerates (Appendix B §2–§3):
//!
//! * [`Function`] — the micro-architecture operations (`ADD`, `INC`,
//!   `MUX_SCL`, `SHL1`, `STORAGE`, …) that synthesis tools query by;
//! * [`ComponentType`] — the predefined component list (`Counter`,
//!   `Adder_Subtractor`, `ALU`, `Register`, …);
//! * port naming — `I0, I1, …` inputs, `O0, …` outputs, `C0, …` controls,
//!   plus the standard aliases (`Cin` for the `ADD` carry input, the
//!   comparator's `OEQ/ONEQ/OGT/OLT/OGEQ/OLEQ`);
//! * [`Attribute`] — the predefined attribute names (`size`,
//!   `input_latch`, `output_type`, …) with defaults;
//! * [`ConnectionTable`] — the "how to invoke function F on this
//!   component" tables (`## function INC … ** DWUP 0`).
//!
//! ```
//! use icdb_genus::{ConnectionTable, Function};
//!
//! let table = ConnectionTable::parse(
//!     "## function INC\nO0 is Q\n** DWUP 0\n** CLK 1 edge_trigger\n",
//! ).unwrap();
//! assert!(table.to_paper_format().contains("** DWUP 0"));
//! assert_eq!(Function::Inc.name(), "INC");
//! assert_eq!("INC".parse::<Function>().unwrap(), Function::Inc);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A micro-architecture level function (Appendix B §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the vocabulary itself
pub enum Function {
    // Logic operations.
    And,
    Or,
    Not,
    Nand,
    Nor,
    Xor,
    Xnor,
    // Arithmetic.
    Add,
    Sub,
    Mul,
    Div,
    Inc,
    Dec,
    // Relations.
    Eq,
    Neq,
    Gt,
    Ge,
    Lt,
    Le,
    // Selection.
    MuxScl,
    MuxScg,
    // Shifts and rotates.
    Shl1,
    Shr1,
    RotL1,
    RotR1,
    AShl1,
    AShr1,
    Shl,
    Shr,
    RotL,
    RotR,
    AShl,
    AShr,
    // Coding.
    Encode,
    Decode,
    // Interface.
    Buf,
    ClkDr,
    SchmTgr,
    TriState,
    // Wiring.
    Port,
    Bus,
    WireOr,
    // Switch box.
    Concat,
    Extract,
    // Clocking and delay.
    ClkGen,
    Delay,
    // Memory operations.
    Load,
    Store,
    Memory,
    Read,
    Write,
    Push,
    Pop,
    // Component-level classification used by §4.1 (an up-counter performs
    // INCREMENT and COUNTER; a register performs STORAGE).
    Counter,
    Storage,
}

impl Function {
    /// Canonical GENUS spelling (`MUX_SCL`, `CLK_DR`, …).
    pub fn name(self) -> &'static str {
        use Function::*;
        match self {
            And => "AND",
            Or => "OR",
            Not => "NOT",
            Nand => "NAND",
            Nor => "NOR",
            Xor => "XOR",
            Xnor => "XNOR",
            Add => "ADD",
            Sub => "SUB",
            Mul => "MUL",
            Div => "DIV",
            Inc => "INC",
            Dec => "DEC",
            Eq => "EQ",
            Neq => "NEQ",
            Gt => "GT",
            Ge => "GE",
            Lt => "LT",
            Le => "LE",
            MuxScl => "MUX_SCL",
            MuxScg => "MUX_SCG",
            Shl1 => "SHL1",
            Shr1 => "SHR1",
            RotL1 => "ROTL1",
            RotR1 => "ROTR1",
            AShl1 => "ASHL1",
            AShr1 => "ASHR1",
            Shl => "SHL",
            Shr => "SHR",
            RotL => "ROTL",
            RotR => "ROTR",
            AShl => "ASHL",
            AShr => "ASHR",
            Encode => "ENCODE",
            Decode => "DECODE",
            Buf => "BUF",
            ClkDr => "CLK_DR",
            SchmTgr => "SCHM_TGR",
            TriState => "TRI_STATE",
            Port => "PORT",
            Bus => "BUS",
            WireOr => "WIRE_OR",
            Concat => "CONCAT",
            Extract => "EXTRACT",
            ClkGen => "CLK_GEN",
            Delay => "DELAY",
            Load => "LOAD",
            Store => "STORE",
            Memory => "MEMORY",
            Read => "READ",
            Write => "WRITE",
            Push => "PUSH",
            Pop => "POP",
            Counter => "COUNTER",
            Storage => "STORAGE",
        }
    }

    /// Every function, in a stable order.
    pub fn all() -> &'static [Function] {
        use Function::*;
        &[
            And, Or, Not, Nand, Nor, Xor, Xnor, Add, Sub, Mul, Div, Inc, Dec, Eq, Neq, Gt, Ge, Lt,
            Le, MuxScl, MuxScg, Shl1, Shr1, RotL1, RotR1, AShl1, AShr1, Shl, Shr, RotL, RotR, AShl,
            AShr, Encode, Decode, Buf, ClkDr, SchmTgr, TriState, Port, Bus, WireOr, Concat,
            Extract, ClkGen, Delay, Load, Store, Memory, Read, Write, Push, Pop, Counter, Storage,
        ]
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error parsing a function or component name.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNameError {
    /// The offending name.
    pub name: String,
    /// What was being parsed.
    pub what: &'static str,
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} `{}`", self.what, self.name)
    }
}

impl std::error::Error for ParseNameError {}

impl FromStr for Function {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.to_ascii_uppercase();
        // Accept the operator spellings of Appendix B too.
        let canonical = match up.as_str() {
            "+" => "ADD",
            "-" => "SUB",
            "*" => "MUL",
            "/" => "DIV",
            "++" => "INC",
            "--" => "DEC",
            "INCREMENT" => "INC",
            "DECREMENT" => "DEC",
            "UP" => "INC",
            "DOWN" => "DEC",
            other => other,
        };
        Function::all()
            .iter()
            .find(|f| f.name() == canonical)
            .copied()
            .ok_or(ParseNameError {
                name: s.to_string(),
                what: "function",
            })
    }
}

/// A predefined component type (Appendix B §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ComponentType {
    LogicUnit,
    MuxScl,
    MuxScg,
    Decode,
    Encode,
    Comparator,
    Shifter,
    BarrelShifter,
    AdderSubtractor,
    Alu,
    Multiplier,
    Divider,
    Register,
    Counter,
    RegisterFile,
    Stack,
    Memory,
    Buffer,
    ClockDriver,
    SchmittTrigger,
    TriState,
    Port,
    Bus,
    WireOr,
    Concat,
    Extract,
    ClockGenerator,
    Delay,
    Adder,
}

impl ComponentType {
    /// Canonical name as listed in the paper (`Adder_Subtractor`, …).
    pub fn name(self) -> &'static str {
        use ComponentType::*;
        match self {
            LogicUnit => "Logic_unit",
            MuxScl => "Mux_scl",
            MuxScg => "Mux_scg",
            Decode => "Decode",
            Encode => "Encode",
            Comparator => "Comparator",
            Shifter => "Shifter",
            BarrelShifter => "Barrel_shifter",
            AdderSubtractor => "Adder_Subtractor",
            Alu => "ALU",
            Multiplier => "Multiplier",
            Divider => "Divider",
            Register => "Register",
            Counter => "Counter",
            RegisterFile => "Register_file",
            Stack => "Stack",
            Memory => "Memory",
            Buffer => "Buffer",
            ClockDriver => "Clock_driver",
            SchmittTrigger => "Schmitt_trigger",
            TriState => "Tri_state",
            Port => "Port",
            Bus => "Bus",
            WireOr => "Wire_or",
            Concat => "Concat",
            Extract => "Extract",
            ClockGenerator => "Clock_generator",
            Delay => "Delay",
            Adder => "Adder",
        }
    }

    /// Every component type.
    pub fn all() -> &'static [ComponentType] {
        use ComponentType::*;
        &[
            LogicUnit,
            MuxScl,
            MuxScg,
            Decode,
            Encode,
            Comparator,
            Shifter,
            BarrelShifter,
            AdderSubtractor,
            Alu,
            Multiplier,
            Divider,
            Register,
            Counter,
            RegisterFile,
            Stack,
            Memory,
            Buffer,
            ClockDriver,
            SchmittTrigger,
            TriState,
            Port,
            Bus,
            WireOr,
            Concat,
            Extract,
            ClockGenerator,
            Delay,
            Adder,
        ]
    }

    /// Functions a component of this type characteristically performs
    /// (§4.1: "an up-counter performs the functions INCREMENT and COUNTER,
    /// a register performs the function STORAGE…").
    pub fn typical_functions(self) -> Vec<Function> {
        use ComponentType::*;
        use Function as F;
        match self {
            Counter => vec![F::Inc, F::Dec, F::Counter, F::Storage, F::Load],
            Register => vec![F::Storage, F::Load, F::Store],
            Adder => vec![F::Add],
            AdderSubtractor => vec![F::Add, F::Sub],
            Alu => vec![F::Add, F::Sub, F::And, F::Or, F::Xor, F::Not],
            Comparator => vec![F::Eq, F::Neq, F::Gt, F::Ge, F::Lt, F::Le],
            Shifter => vec![F::Shl1, F::Shr1],
            BarrelShifter => vec![F::Shl, F::Shr, F::RotL, F::RotR],
            MuxScl => vec![F::MuxScl],
            MuxScg => vec![F::MuxScg],
            Decode => vec![F::Decode],
            Encode => vec![F::Encode],
            LogicUnit => vec![F::And, F::Or, F::Not, F::Nand, F::Nor, F::Xor, F::Xnor],
            Multiplier => vec![F::Mul],
            Divider => vec![F::Div],
            RegisterFile => vec![F::Storage, F::Read, F::Write],
            Stack => vec![F::Push, F::Pop, F::Storage],
            Memory => vec![F::Memory, F::Read, F::Write, F::Storage],
            Buffer => vec![F::Buf],
            ClockDriver => vec![F::ClkDr],
            SchmittTrigger => vec![F::SchmTgr],
            TriState => vec![F::TriState],
            Port => vec![F::Port],
            Bus => vec![F::Bus],
            WireOr => vec![F::WireOr],
            Concat => vec![F::Concat],
            Extract => vec![F::Extract],
            ClockGenerator => vec![F::ClkGen],
            Delay => vec![F::Delay],
        }
    }
}

impl fmt::Display for ComponentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for ComponentType {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let low = s.to_ascii_lowercase();
        ComponentType::all()
            .iter()
            .find(|c| c.name().to_ascii_lowercase() == low)
            .copied()
            .ok_or(ParseNameError {
                name: s.to_string(),
                what: "component type",
            })
    }
}

/// Standard data port name: `I0, I1, …` / `O0, O1, …` (Appendix B §3).
pub fn data_port_name(output: bool, index: usize) -> String {
    format!("{}{}", if output { "O" } else { "I" }, index)
}

/// Standard control port name: `C0, C1, …`.
pub fn control_port_name(index: usize) -> String {
    format!("C{index}")
}

/// Standard aliases (Appendix B §3): the `ADD` carry input `Cin` for `I2`,
/// comparator outputs `OEQ…OLEQ` for `O0…O5`, clock `clk`.
pub fn alias_of(function_or_component: &str, port: &str) -> Option<&'static str> {
    match (
        function_or_component.to_ascii_uppercase().as_str(),
        port.to_ascii_uppercase().as_str(),
    ) {
        ("ADD", "I2") => Some("Cin"),
        ("ADD", "O1") => Some("Cout"),
        ("COMPARATOR", "O0") => Some("OEQ"),
        ("COMPARATOR", "O1") => Some("ONEQ"),
        ("COMPARATOR", "O2") => Some("OGT"),
        ("COMPARATOR", "O3") => Some("OLT"),
        ("COMPARATOR", "O4") => Some("OGEQ"),
        ("COMPARATOR", "O5") => Some("OLEQ"),
        _ => None,
    }
}

/// A predefined component attribute (Appendix B §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attribute {
    /// Input bit length.
    Size,
    /// Whether the component latches its inputs.
    InputLatch,
    /// Whether the component latches its outputs.
    OutputLatch,
    /// Active-high (`high`) or active-low (`low`) inputs.
    InputType,
    /// Active-high or active-low outputs.
    OutputType,
    /// Tri-state buffer on the outputs.
    OutputTriState,
}

impl Attribute {
    /// Canonical attribute keyword.
    pub fn name(self) -> &'static str {
        match self {
            Attribute::Size => "size",
            Attribute::InputLatch => "input_latch",
            Attribute::OutputLatch => "output_latch",
            Attribute::InputType => "input_type",
            Attribute::OutputType => "output_type",
            Attribute::OutputTriState => "output_tri_state",
        }
    }

    /// Default value when a request omits the attribute.
    pub fn default_value(self) -> &'static str {
        match self {
            Attribute::Size => "1",
            Attribute::InputLatch | Attribute::OutputLatch | Attribute::OutputTriState => "0",
            Attribute::InputType | Attribute::OutputType => "high",
        }
    }

    /// Every predefined attribute.
    pub fn all() -> &'static [Attribute] {
        &[
            Attribute::Size,
            Attribute::InputLatch,
            Attribute::OutputLatch,
            Attribute::InputType,
            Attribute::OutputType,
            Attribute::OutputTriState,
        ]
    }
}

/// How to drive one control pin to invoke a function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinSetting {
    /// Port name on the component.
    pub port: String,
    /// Required value (`"0"`, `"1"`, or a code like `"10"`).
    pub value: String,
    /// Extra qualifier (the paper prints `edge_trigger` for clocks).
    pub qualifier: Option<String>,
}

/// Connection information for one function of a component (paper §4.1):
/// operand mapping plus control settings.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FunctionConnection {
    /// `(function operand, component port)` pairs (`OO is OO high`).
    pub operand_map: Vec<(String, String)>,
    /// Control pin settings (`** DWUP 0`).
    pub settings: Vec<PinSetting>,
}

/// The full connection table of a component: function name → how to hook
/// it up.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConnectionTable {
    /// Per-function connection data, ordered by function name.
    pub functions: BTreeMap<String, FunctionConnection>,
}

impl ConnectionTable {
    /// Empty table.
    pub fn new() -> ConnectionTable {
        ConnectionTable::default()
    }

    /// Adds (or replaces) the connection data for `function`.
    pub fn set(&mut self, function: impl Into<String>, conn: FunctionConnection) {
        self.functions.insert(function.into(), conn);
    }

    /// Renders in the paper's §4.1 text format:
    ///
    /// ```text
    /// ## function INC
    /// OO is OO high
    /// ** DWUP 0
    /// ** CLK 1 edge_trigger
    /// ```
    pub fn to_paper_format(&self) -> String {
        let mut out = String::new();
        for (fname, conn) in &self.functions {
            out.push_str(&format!("## function {fname}\n"));
            for (operand, port) in &conn.operand_map {
                out.push_str(&format!("{operand} is {port}\n"));
            }
            for s in &conn.settings {
                match &s.qualifier {
                    Some(q) => out.push_str(&format!("** {} {} {}\n", s.port, s.value, q)),
                    None => out.push_str(&format!("** {} {}\n", s.port, s.value)),
                }
            }
        }
        out
    }

    /// Parses the paper's text format back.
    ///
    /// # Errors
    /// Fails on malformed lines.
    pub fn parse(text: &str) -> Result<ConnectionTable, ParseNameError> {
        let mut table = ConnectionTable::new();
        let mut current: Option<(String, FunctionConnection)> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("## function") {
                if let Some((name, conn)) = current.take() {
                    table.set(name, conn);
                }
                current = Some((rest.trim().to_string(), FunctionConnection::default()));
            } else if let Some(rest) = line.strip_prefix("**") {
                let cols: Vec<&str> = rest.split_whitespace().collect();
                let (name_conn, _) = match current.as_mut() {
                    Some(c) => (c, ()),
                    None => {
                        return Err(ParseNameError {
                            name: line.to_string(),
                            what: "connection line outside a function block",
                        })
                    }
                };
                if cols.len() < 2 {
                    return Err(ParseNameError {
                        name: line.to_string(),
                        what: "control setting",
                    });
                }
                name_conn.1.settings.push(PinSetting {
                    port: cols[0].to_string(),
                    value: cols[1].to_string(),
                    qualifier: cols.get(2).map(|s| s.to_string()),
                });
            } else if let Some((operand, port)) = line.split_once(" is ") {
                let (name_conn, _) = match current.as_mut() {
                    Some(c) => (c, ()),
                    None => {
                        return Err(ParseNameError {
                            name: line.to_string(),
                            what: "operand line outside a function block",
                        })
                    }
                };
                name_conn
                    .1
                    .operand_map
                    .push((operand.trim().to_string(), port.trim().to_string()));
            } else {
                return Err(ParseNameError {
                    name: line.to_string(),
                    what: "connection line",
                });
            }
        }
        if let Some((name, conn)) = current.take() {
            table.set(name, conn);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_names_round_trip() {
        for f in Function::all() {
            let parsed: Function = f.name().parse().unwrap();
            assert_eq!(parsed, *f);
        }
        assert_eq!("INC".parse::<Function>().unwrap(), Function::Inc);
        assert_eq!("increment".parse::<Function>().unwrap(), Function::Inc);
        assert_eq!("++".parse::<Function>().unwrap(), Function::Inc);
        assert!("BOGUS".parse::<Function>().is_err());
    }

    #[test]
    fn component_names_round_trip() {
        for c in ComponentType::all() {
            let parsed: ComponentType = c.name().parse().unwrap();
            assert_eq!(parsed, *c);
        }
        assert_eq!(
            "adder_subtractor".parse::<ComponentType>().unwrap(),
            ComponentType::AdderSubtractor
        );
    }

    #[test]
    fn counter_performs_inc_dec_counter_storage() {
        let fs = ComponentType::Counter.typical_functions();
        for f in [
            Function::Inc,
            Function::Dec,
            Function::Counter,
            Function::Storage,
        ] {
            assert!(fs.contains(&f), "counter must perform {f}");
        }
    }

    #[test]
    fn port_names_and_aliases() {
        assert_eq!(data_port_name(false, 0), "I0");
        assert_eq!(data_port_name(true, 2), "O2");
        assert_eq!(control_port_name(1), "C1");
        assert_eq!(alias_of("ADD", "I2"), Some("Cin"));
        assert_eq!(alias_of("Comparator", "O3"), Some("OLT"));
        assert_eq!(alias_of("ADD", "I0"), None);
    }

    #[test]
    fn attributes_have_defaults() {
        for a in Attribute::all() {
            assert!(!a.default_value().is_empty());
        }
        assert_eq!(Attribute::Size.default_value(), "1");
        assert_eq!(Attribute::InputType.default_value(), "high");
    }

    #[test]
    fn connection_table_round_trips_paper_example() {
        let text = "\
## function INC
OO is OO high
** DWUP 0
** ENA 0
** LOAD 1
** CLK 1 edge_trigger
";
        let table = ConnectionTable::parse(text).unwrap();
        let inc = &table.functions["INC"];
        assert_eq!(
            inc.operand_map,
            vec![("OO".to_string(), "OO high".to_string())]
        );
        assert_eq!(inc.settings.len(), 4);
        assert_eq!(inc.settings[3].qualifier.as_deref(), Some("edge_trigger"));
        let rendered = table.to_paper_format();
        let reparsed = ConnectionTable::parse(&rendered).unwrap();
        assert_eq!(table, reparsed);
    }

    #[test]
    fn connection_parse_rejects_garbage() {
        assert!(ConnectionTable::parse("** DWUP 0").is_err());
        assert!(ConnectionTable::parse("## function F\njunk line").is_err());
    }
}
