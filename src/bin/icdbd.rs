//! `icdbd` — the ICDB component-database daemon.
//!
//! Serves the shared knowledge base, generation cache and per-connection
//! design namespaces over the line-oriented CQL protocol of
//! [`icdb::net`]. One thread per connection, bounded by `--max-connections`.
//!
//! ```text
//! icdbd [--addr HOST:PORT] [--max-connections N]
//! ```
//!
//! Try it with netcat:
//!
//! ```text
//! $ icdbd &
//! $ nc 127.0.0.1 7433
//! OK icdbd ready (session ns1)
//! command:request_component; component_name:counter; attribute:(size:5); generated_component:?s
//! OK 1
//! s counter$1
//! quit
//! ```

use icdb::net::{Server, DEFAULT_MAX_CONNECTIONS, DEFAULT_PORT};
use icdb::IcdbService;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut addr = format!("127.0.0.1:{DEFAULT_PORT}");
    let mut max_connections = DEFAULT_MAX_CONNECTIONS;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" | "-a" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--max-connections" | "-c" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => max_connections = v,
                _ => return usage("--max-connections needs a positive integer"),
            },
            "--help" | "-h" => {
                println!(
                    "icdbd — ICDB component-database daemon\n\n\
                     USAGE: icdbd [--addr HOST:PORT] [--max-connections N]\n\n\
                     OPTIONS:\n\
                     \x20 -a, --addr HOST:PORT       listen address (default 127.0.0.1:{DEFAULT_PORT})\n\
                     \x20 -c, --max-connections N    connection cap (default {DEFAULT_MAX_CONNECTIONS})\n\n\
                     PROTOCOL: one CQL command per line, `quit` to disconnect;\n\
                     see the `icdb::net` module docs or the README for details."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let service = Arc::new(IcdbService::new());
    let server = match Server::bind(&addr, service, max_connections) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("icdbd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!("icdbd: listening on {bound} (max {max_connections} connections)"),
        Err(_) => eprintln!("icdbd: listening on {addr}"),
    }
    if let Err(e) = server.serve() {
        eprintln!("icdbd: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(message: &str) -> ExitCode {
    eprintln!("icdbd: {message}\nUSAGE: icdbd [--addr HOST:PORT] [--max-connections N]");
    ExitCode::FAILURE
}
