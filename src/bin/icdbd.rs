//! `icdbd` — the ICDB component-database daemon.
//!
//! Serves the shared knowledge base, generation cache and per-connection
//! design namespaces over the line-oriented CQL protocol of
//! [`icdb::net`]. One thread per connection, bounded by `--max-connections`.
//!
//! ```text
//! icdbd [--addr HOST:PORT] [--max-connections N] [--data-dir DIR] [--no-fsync]
//! ```
//!
//! With `--data-dir`, the daemon is **crash-recovering**: on boot it loads
//! the newest valid snapshot and replays the write-ahead log (truncating
//! any torn final record), and every mutation is journaled — fsynced by
//! default — before it is applied. `SIGINT`/`SIGTERM` trigger a graceful
//! shutdown: the accept loop stops, the WAL is flushed and a checkpoint
//! (full snapshot + fresh WAL generation) is written, so the next boot
//! starts without replay. A `SIGKILL` (or power loss) instead recovers
//! from the journal — byte-identically, which `tests/durability_e2e.rs`
//! pins down.
//!
//! Try it with netcat:
//!
//! ```text
//! $ icdbd --data-dir /var/lib/icdb &
//! $ nc 127.0.0.1 7433
//! OK icdbd ready (session ns1)
//! command:request_component; component_name:counter; attribute:(size:5); generated_component:?s
//! OK 1
//! s counter$1
//! command:persist; wal_events:?d; wal_bytes:?d
//! OK 2
//! d 2
//! d 310
//! quit
//! ```
//!
//! After a restart, reconnect and `attach ns1` to resume the recovered
//! session namespace.

use icdb::net::{Server, DEFAULT_MAX_CONNECTIONS, DEFAULT_PORT};
use icdb::IcdbService;
use std::process::ExitCode;
use std::sync::Arc;

/// Async-signal-safe shutdown flag + handler registration, via the libc
/// `signal` symbol the Rust runtime already links (no extra dependency).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler; polled by the main loop.
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: flip the flag.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGINT/SIGTERM handlers.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

fn main() -> ExitCode {
    let mut addr = format!("127.0.0.1:{DEFAULT_PORT}");
    let mut max_connections = DEFAULT_MAX_CONNECTIONS;
    let mut data_dir: Option<String> = None;
    let mut fsync = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" | "-a" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--max-connections" | "-c" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => max_connections = v,
                _ => return usage("--max-connections needs a positive integer"),
            },
            "--data-dir" | "-d" => match args.next() {
                Some(v) => data_dir = Some(v),
                None => return usage("--data-dir needs a directory path"),
            },
            "--no-fsync" => fsync = false,
            "--help" | "-h" => {
                println!(
                    "icdbd — ICDB component-database daemon\n\n\
                     USAGE: icdbd [--addr HOST:PORT] [--max-connections N] [--data-dir DIR] [--no-fsync]\n\n\
                     OPTIONS:\n\
                     \x20 -a, --addr HOST:PORT       listen address (default 127.0.0.1:{DEFAULT_PORT})\n\
                     \x20 -c, --max-connections N    connection cap (default {DEFAULT_MAX_CONNECTIONS})\n\
                     \x20 -d, --data-dir DIR         durable mode: journal + snapshots in DIR,\n\
                     \x20                            recover on boot, checkpoint on SIGINT/SIGTERM\n\
                     \x20     --no-fsync             skip the per-commit fsync (survives process\n\
                     \x20                            crashes, not power loss)\n\n\
                     PROTOCOL: one CQL command per line; `attach ns<N>` re-binds the session\n\
                     to a (recovered) namespace; `quit` disconnects. See the `icdb::net`\n\
                     module docs or the README for details."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let service = match &data_dir {
        Some(dir) => match IcdbService::open_with_sync(dir, fsync) {
            Ok(service) => {
                let stats = service.persist_stats().expect("durable service");
                eprintln!(
                    "icdbd: recovered generation {} from {} ({} events replayed{})",
                    stats.generation,
                    stats.data_dir,
                    stats.recovered_events,
                    if fsync { "" } else { ", fsync off" },
                );
                Arc::new(service)
            }
            Err(e) => {
                eprintln!("icdbd: cannot open data dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Arc::new(IcdbService::new()),
    };

    #[cfg(unix)]
    signals::install();

    let server = match Server::bind(&addr, Arc::clone(&service), max_connections) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("icdbd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!("icdbd: listening on {bound} (max {max_connections} connections)"),
        Err(_) => eprintln!("icdbd: listening on {addr}"),
    }
    let handle = match server.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("icdbd: cannot start accept loop: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Wait for a shutdown signal (Unix). On other platforms the daemon
    // serves until killed.
    #[cfg(unix)]
    while !signals::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    #[cfg(not(unix))]
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }

    #[cfg(unix)]
    {
        eprintln!("icdbd: shutdown signal received, stopping accept loop");
        handle.shutdown();
        if data_dir.is_some() {
            // Flush + checkpoint so the next boot starts from a snapshot
            // instead of a long WAL replay. Mutations from still-draining
            // connections stay safe either way: each was journaled before
            // it was applied.
            match service.checkpoint() {
                Ok(stats) => eprintln!(
                    "icdbd: checkpointed generation {} ({} snapshot bytes)",
                    stats.generation, stats.snapshot_bytes
                ),
                Err(e) => {
                    eprintln!("icdbd: checkpoint on shutdown failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!(
        "icdbd: {message}\nUSAGE: icdbd [--addr HOST:PORT] [--max-connections N] \
         [--data-dir DIR] [--no-fsync]"
    );
    ExitCode::FAILURE
}
