//! `icdbd` — the ICDB component-database daemon.
//!
//! Serves the shared knowledge base, generation cache and per-connection
//! design namespaces over the line-oriented CQL protocol of
//! [`icdb::net`]. Connections are multiplexed over an epoll worker pool
//! (`--workers`, Linux); `--max-connections` is pure admission policy —
//! a connection over the cap is refused with `ERR capacity …`, never
//! queued.
//!
//! ```text
//! icdbd [--addr HOST:PORT] [--max-connections N] [--workers N]
//!       [--data-dir DIR] [--no-fsync] [--group-commit-window MS]
//!       [--idle-timeout SECS] [--replicate-from HOST:PORT]
//!       [--metrics-addr HOST:PORT] [--log-level LEVEL]
//!       [--log-format text|json] [--slow-query-ms MS]
//! ```
//!
//! With `--metrics-addr HOST:PORT` the daemon additionally serves its
//! full metrics registry as Prometheus text exposition over plain
//! HTTP/1.0 (`GET /metrics`), multiplexed on the existing epoll worker
//! pool — the same samples the read-only `metrics` CQL command returns
//! over the main port. `--log-level` (error/warn/info/debug/trace) and
//! `--log-format` (text or one-line JSON) shape every diagnostic line on
//! stderr; requests slower than `--slow-query-ms` (default 100, 0
//! disables) are logged at `warn` with their trace id.
//!
//! With `--replicate-from HOST:PORT` (plus `--data-dir`, pointed at an
//! *empty* directory) the daemon runs as a **replication follower**: it
//! bootstraps the primary's latest snapshot generation and WAL tail over
//! the `repl_snapshot` wire command, then tails the primary's fsynced
//! commit stream (`repl_stream`) and replays every event through the
//! same apply path crash recovery uses. The follower serves the entire
//! read-only surface locally, answers mutations with `ERR not_primary`,
//! reports its position via `command:persist; role:?s; applied_seq:?d;
//! lag_events:?d; upstream:?s`, and is promoted to a writable primary
//! with `command:persist; promote:1` (see `icdb::repl`).
//!
//! With `--data-dir`, the daemon is **crash-recovering**: on boot it loads
//! the newest valid snapshot and replays the write-ahead log (truncating
//! any torn final record), and every mutation is journaled before it is
//! applied. Durability is **group-commit**: concurrent committers enqueue
//! WAL records and one fsync acknowledges the whole batch;
//! `--group-commit-window` lets a would-be flush leader linger that many
//! milliseconds for companions first (default 0: flush eagerly, still
//! batching whatever queued while the previous fsync ran). `--no-fsync`
//! drops the fsync entirely — acknowledged commits then survive process
//! crashes, not power loss — making the window moot.
//!
//! `SIGINT`/`SIGTERM` trigger a graceful shutdown: the accept loop
//! stops, the epoll workers exit (parking live sessions — their
//! namespaces survive for post-restart `attach`), any in-flight group
//! commit is drained, and only then is a checkpoint (full snapshot plus
//! a fresh WAL generation) written, so the next boot starts without
//! replay. A `SIGKILL` (or power loss) instead recovers from the journal
//! — exactly the acknowledged prefix, which `tests/durability_e2e.rs`
//! and `tests/recovery_properties.rs` pin down.
//!
//! Try it with netcat:
//!
//! ```text
//! $ icdbd --data-dir /var/lib/icdb &
//! $ nc 127.0.0.1 7433
//! OK icdbd ready (session ns1)
//! command:request_component; component_name:counter; attribute:(size:5); generated_component:?s
//! OK 1
//! s counter$1
//! command:persist; wal_events:?d; wal_bytes:?d
//! OK 2
//! d 2
//! d 310
//! quit
//! ```
//!
//! After a restart, reconnect and `attach ns1` to resume the recovered
//! session namespace.

use icdb::net::{Server, DEFAULT_MAX_CONNECTIONS, DEFAULT_PORT, DEFAULT_WORKERS};
use icdb::obs::log as olog;
use icdb::obs::metrics as obs;
use icdb::IcdbService;
use olog::Value;
use std::process::ExitCode;
use std::sync::Arc;

/// Async-signal-safe shutdown flag + handler registration, via the libc
/// `signal` symbol the Rust runtime already links (no extra dependency).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler; polled by the main loop.
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: flip the flag.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGINT/SIGTERM handlers.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

fn main() -> ExitCode {
    let mut addr = format!("127.0.0.1:{DEFAULT_PORT}");
    let mut max_connections = DEFAULT_MAX_CONNECTIONS;
    let mut data_dir: Option<String> = None;
    let mut fsync = true;
    let mut workers = DEFAULT_WORKERS;
    let mut group_commit_window = std::time::Duration::ZERO;
    let mut idle_timeout = std::time::Duration::ZERO;
    let mut replicate_from: Option<String> = None;
    let mut metrics_addr: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" | "-a" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--max-connections" | "-c" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => max_connections = v,
                _ => return usage("--max-connections needs a positive integer"),
            },
            "--data-dir" | "-d" => match args.next() {
                Some(v) => data_dir = Some(v),
                None => return usage("--data-dir needs a directory path"),
            },
            "--no-fsync" => fsync = false,
            "--workers" | "-w" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => workers = v,
                _ => return usage("--workers needs a positive integer"),
            },
            "--group-commit-window" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => group_commit_window = std::time::Duration::from_millis(ms),
                _ => return usage("--group-commit-window needs milliseconds"),
            },
            "--idle-timeout" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(secs)) => idle_timeout = std::time::Duration::from_secs(secs),
                _ => return usage("--idle-timeout needs seconds (0 disables it)"),
            },
            "--replicate-from" => match args.next() {
                Some(v) => replicate_from = Some(v),
                None => return usage("--replicate-from needs the primary's HOST:PORT"),
            },
            "--metrics-addr" => match args.next() {
                Some(v) => metrics_addr = Some(v),
                None => return usage("--metrics-addr needs HOST:PORT"),
            },
            "--log-level" => match args.next().as_deref().and_then(olog::Level::parse) {
                Some(level) => olog::set_level(level),
                None => return usage("--log-level needs error|warn|info|debug|trace"),
            },
            "--log-format" => match args.next().as_deref().and_then(olog::Format::parse) {
                Some(format) => olog::set_format(format),
                None => return usage("--log-format needs text|json"),
            },
            "--slow-query-ms" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => obs::set_slow_query_threshold_ms(ms),
                _ => return usage("--slow-query-ms needs milliseconds (0 disables)"),
            },
            "--help" | "-h" => {
                println!(
                    "icdbd — ICDB component-database daemon\n\n\
                     USAGE: icdbd [--addr HOST:PORT] [--max-connections N] [--workers N]\n\
                     \x20             [--data-dir DIR] [--no-fsync] [--group-commit-window MS]\n\n\
                     OPTIONS:\n\
                     \x20 -a, --addr HOST:PORT       listen address (default 127.0.0.1:{DEFAULT_PORT})\n\
                     \x20 -c, --max-connections N    admission cap (default {DEFAULT_MAX_CONNECTIONS});\n\
                     \x20                            connections over the cap are refused, not queued\n\
                     \x20 -w, --workers N            epoll worker pool size (default {DEFAULT_WORKERS})\n\
                     \x20 -d, --data-dir DIR         durable mode: journal + snapshots in DIR,\n\
                     \x20                            recover on boot, checkpoint on SIGINT/SIGTERM\n\
                     \x20     --no-fsync             skip the per-batch fsync (survives process\n\
                     \x20                            crashes, not power loss)\n\
                     \x20     --group-commit-window MS  let a flush leader wait MS milliseconds\n\
                     \x20                            for companion commits before fsyncing\n\
                     \x20     --idle-timeout SECS    disconnect a connection silent for SECS\n\
                     \x20                            seconds (default 0: never)\n\
                     \x20     --replicate-from HOST:PORT  run as a replication follower of the\n\
                     \x20                            primary at HOST:PORT (needs --data-dir,\n\
                     \x20                            pointed at an empty directory): bootstrap\n\
                     \x20                            its snapshot + WAL tail, tail its commit\n\
                     \x20                            stream, serve reads, refuse writes with\n\
                     \x20                            `ERR not_primary`; promote with\n\
                     \x20                            `command:persist; promote:1`\n\
                     \x20     --metrics-addr HOST:PORT  serve Prometheus text exposition over\n\
                     \x20                            HTTP (`GET /metrics`) on this address,\n\
                     \x20                            multiplexed on the epoll worker pool\n\
                     \x20     --log-level LEVEL      stderr log level: error|warn|info|debug|\n\
                     \x20                            trace (default info)\n\
                     \x20     --log-format FMT       stderr log format: text|json (default text)\n\
                     \x20     --slow-query-ms MS     log requests slower than MS milliseconds\n\
                     \x20                            at warn, with trace id (default 100;\n\
                     \x20                            0 disables)\n\n\
                     PROTOCOL: one CQL command per line; `attach ns<N>` re-binds the session\n\
                     to a (recovered) namespace; `quit` disconnects. See the `icdb::net`\n\
                     module docs or the README for details."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut follower = None;
    let boot_started = std::time::Instant::now();
    let service = match (&replicate_from, &data_dir) {
        (Some(upstream), Some(dir)) => {
            match icdb::repl::bootstrap(upstream, dir, fsync, group_commit_window) {
                Ok(running) => {
                    let service = std::sync::Arc::clone(running.service());
                    let boot_ms = boot_started.elapsed().as_millis() as u64;
                    match service.persist_stats() {
                        Some(stats) => olog::info(
                            "boot",
                            "following upstream",
                            &[
                                ("upstream", Value::Str(upstream)),
                                ("generation", Value::U64(stats.generation)),
                                ("applied_seq", Value::U64(stats.applied_seq)),
                                ("boot_ms", Value::U64(boot_ms)),
                            ],
                        ),
                        None => olog::info(
                            "boot",
                            "following upstream",
                            &[
                                ("upstream", Value::Str(upstream)),
                                ("boot_ms", Value::U64(boot_ms)),
                            ],
                        ),
                    }
                    follower = Some(running);
                    service
                }
                Err(e) => {
                    olog::error(
                        "boot",
                        "cannot bootstrap follower",
                        &[
                            ("upstream", Value::Str(upstream)),
                            ("error", Value::Str(&e.to_string())),
                        ],
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        (Some(_), None) => {
            return usage("--replicate-from needs --data-dir (the follower keeps its own journal)");
        }
        (None, _) => match &data_dir {
            Some(dir) => match IcdbService::open_with_options(dir, fsync, group_commit_window) {
                Ok(service) => {
                    let boot_ms = boot_started.elapsed().as_millis() as u64;
                    match service.persist_stats() {
                        Some(stats) => olog::info(
                            "boot",
                            "recovered durable image",
                            &[
                                ("generation", Value::U64(stats.generation)),
                                ("data_dir", Value::Str(&stats.data_dir)),
                                ("replayed_events", Value::U64(stats.recovered_events)),
                                ("fsync", Value::Bool(fsync)),
                                ("boot_ms", Value::U64(boot_ms)),
                            ],
                        ),
                        None => olog::info(
                            "boot",
                            "recovered durable image (no journal stats)",
                            &[("data_dir", Value::Str(dir))],
                        ),
                    }
                    Arc::new(service)
                }
                Err(e) => {
                    olog::error(
                        "boot",
                        "cannot open data dir",
                        &[
                            ("data_dir", Value::Str(dir)),
                            ("error", Value::Str(&e.to_string())),
                        ],
                    );
                    return ExitCode::FAILURE;
                }
            },
            None => Arc::new(IcdbService::new()),
        },
    };

    #[cfg(unix)]
    signals::install();

    let mut server = match Server::bind_with(&addr, Arc::clone(&service), max_connections, workers)
    {
        Ok(server) => server,
        Err(e) => {
            olog::error(
                "boot",
                "cannot bind listen address",
                &[
                    ("addr", Value::Str(&addr)),
                    ("error", Value::Str(&e.to_string())),
                ],
            );
            return ExitCode::FAILURE;
        }
    };
    server.set_idle_timeout(idle_timeout);
    if let Some(maddr) = &metrics_addr {
        match std::net::TcpListener::bind(maddr) {
            Ok(listener) => {
                let bound = listener
                    .local_addr()
                    .map_or_else(|_| maddr.clone(), |a| a.to_string());
                server.set_metrics_listener(listener);
                olog::info(
                    "boot",
                    "metrics endpoint up",
                    &[("metrics_addr", Value::Str(&bound))],
                );
            }
            Err(e) => {
                olog::error(
                    "boot",
                    "cannot bind metrics address",
                    &[
                        ("metrics_addr", Value::Str(maddr)),
                        ("error", Value::Str(&e.to_string())),
                    ],
                );
                return ExitCode::FAILURE;
            }
        }
    }
    match server.local_addr() {
        Ok(bound) => olog::info(
            "boot",
            "listening",
            &[
                ("addr", Value::Str(&bound.to_string())),
                ("max_connections", Value::U64(max_connections as u64)),
                ("workers", Value::U64(workers as u64)),
            ],
        ),
        Err(_) => olog::info("boot", "listening", &[("addr", Value::Str(&addr))]),
    }
    let handle = match server.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            olog::error(
                "boot",
                "cannot start accept loop",
                &[("error", Value::Str(&e.to_string()))],
            );
            return ExitCode::FAILURE;
        }
    };

    // Wait for a shutdown signal (Unix). On other platforms the daemon
    // serves until killed.
    #[cfg(unix)]
    while !signals::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    #[cfg(not(unix))]
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }

    #[cfg(unix)]
    {
        olog::info("shutdown", "signal received, stopping accept loop", &[]);
        // A follower first stops tailing its upstream, so no replicated
        // event lands between the worker drain and the checkpoint.
        if let Some(mut running) = follower.take() {
            running.stop();
            if let Some(reason) = running.stall_reason() {
                olog::warn(
                    "shutdown",
                    "replication had stalled",
                    &[("reason", Value::Str(&reason))],
                );
            }
        }
        // Order matters: `shutdown()` joins the epoll workers, so every
        // live session has been parked and every commit those workers
        // issued is at least *enqueued* on the group-commit queue before
        // the checkpoint below runs. The checkpoint then drains that
        // queue (flushing any in-flight batch) before capturing the
        // snapshot; checkpointing first would race the drain and could
        // snapshot ahead of still-queued acknowledged commits.
        handle.shutdown();
        if data_dir.is_some() {
            // Drain + checkpoint so the next boot starts from a snapshot
            // instead of a long WAL replay.
            match service.checkpoint() {
                Ok(stats) => olog::info(
                    "shutdown",
                    "checkpointed",
                    &[
                        ("generation", Value::U64(stats.generation)),
                        ("snapshot_bytes", Value::U64(stats.snapshot_bytes)),
                    ],
                ),
                Err(e) => {
                    olog::error(
                        "shutdown",
                        "checkpoint failed",
                        &[("error", Value::Str(&e.to_string()))],
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    olog::error("cli", message, &[]);
    // The synopsis is user-facing help, not a log event: plain stderr.
    eprintln!(
        "USAGE: icdbd [--addr HOST:PORT] [--max-connections N] [--workers N] \
         [--data-dir DIR] [--no-fsync] [--group-commit-window MS] [--idle-timeout SECS] \
         [--replicate-from HOST:PORT] [--metrics-addr HOST:PORT] [--log-level LEVEL] \
         [--log-format text|json] [--slow-query-ms MS]"
    );
    ExitCode::FAILURE
}
