//! The Linux epoll event loop behind [`crate::net::Server`]: thousands of
//! connections multiplexed over a small worker pool.
//!
//! Earlier revisions ran one thread per connection, so the connection cap
//! was really a thread budget. Here a blocking acceptor admits sockets
//! (the cap becomes pure admission policy) and hands each one round-robin
//! to a worker; every worker owns a private `epoll` instance, an
//! `eventfd` wake channel, and the per-connection state machines — a
//! read buffer scanned for line frames, a write buffer drained as the
//! socket accepts bytes, and the [`Session`](icdb_core::Session) whose
//! drop cleans the namespace up. No `libc` crate: the five syscalls are
//! declared as raw externs, per the repo's no-dependency policy.
//!
//! Commands still execute synchronously on the owning worker, so one
//! long cold generation stalls that worker's other connections (not the
//! whole server) — acceptable because the service's epoch snapshots and
//! group-commit keep individual commands short; the worker count
//! ([`crate::net::DEFAULT_WORKERS`], `icdbd --workers`) bounds the
//! blast radius.

use crate::net::{dispatch_line, escape, http_metrics_response, ErrCode, MAX_LINE};
use icdb_core::IcdbService;
use icdb_obs::log as olog;
use icdb_obs::metrics as obs;
use std::collections::HashMap;
use std::io::{self, Read, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

// ------------------------------------------------------- raw epoll ABI

#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn ctl(epfd: i32, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events: interest,
        data: token,
    };
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Rings a worker's eventfd (acceptor → worker handoff, shutdown nudge).
fn ring(wake_fd: i32) {
    let one: u64 = 1;
    let _ = unsafe { write(wake_fd, (&one as *const u64).cast(), 8) };
}

/// Drains a worker's eventfd so level-triggered polling quiesces.
fn drain(wake_fd: i32) {
    let mut buf = [0u8; 8];
    let _ = unsafe { read(wake_fd, buf.as_mut_ptr(), 8) };
}

// -------------------------------------------------- connection machine

/// A connection whose unread response backlog (`wbuf` minus what the
/// socket accepted) exceeds this is dropped: a peer that sends requests
/// but never reads answers would otherwise grow the write buffer without
/// bound. Generous — a single response can be large (list outputs) — but
/// finite.
const WRITE_HIGH_WATER: usize = 8 * 1024 * 1024;

/// How many readiness events one `epoll_wait` call collects.
const EVENT_BATCH: usize = 64;

/// How long a worker sleeps in `epoll_wait` before re-checking the
/// shutdown flag (milliseconds).
const WAIT_TIMEOUT_MS: i32 = 500;

/// Token the worker's own eventfd carries (no socket ever gets it: fd 0
/// is stdin and never a freshly accepted connection).
const WAKE_TOKEN: u64 = u64::MAX;

/// Token of the metrics HTTP listener (worker 0 only).
const METRICS_TOKEN: u64 = u64::MAX - 1;

/// High bit marking a token as a metrics HTTP connection rather than a
/// CQL connection. File descriptors are small non-negative ints, so the
/// flagged and unflagged token spaces can never collide.
const HTTP_FLAG: u64 = 1 << 63;

/// A metrics scrape left half-open longer than this is dropped (the CQL
/// idle sweep is configurable; scrapes have no business being slow).
const HTTP_IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// Longest request head a metrics scrape may send.
const HTTP_MAX_HEAD: usize = 8 * 1024;

struct Conn {
    stream: TcpStream,
    session: icdb_core::Session,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    /// Flush what is buffered, then close (set by `quit`, EOF, or a
    /// protocol violation).
    closing: bool,
    /// Whether the epoll registration currently includes `EPOLLOUT`.
    armed_out: bool,
    /// When this connection last showed readiness (the idle-sweep clock).
    last_active: Instant,
}

impl Conn {
    fn interest(&self) -> u32 {
        let mut i = EPOLLIN | EPOLLRDHUP;
        if self.armed_out {
            i |= EPOLLOUT;
        }
        i
    }

    /// Drains as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }

    /// Reads everything currently available; returns whether the peer
    /// closed its end.
    fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Executes every complete line framed in `rbuf`, appending the
    /// responses to `wbuf` — the same per-line protocol as the threaded
    /// server, state-machine style.
    fn process_lines(&mut self) {
        while let Some(pos) = self.rbuf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = self.rbuf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&frame[..pos]);
            let line = text.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                continue;
            }
            if line == "quit" || line == "exit" {
                self.closing = true;
                return;
            }
            let outcome = dispatch_line(&mut self.session, line);
            match outcome {
                Ok(reply) => self.wbuf.extend_from_slice(reply.render().as_bytes()),
                Err((code, message)) => {
                    self.wbuf.extend_from_slice(
                        format!("ERR {} {}\n", code.as_str(), escape(&message)).as_bytes(),
                    );
                }
            }
        }
        if self.rbuf.len() > MAX_LINE {
            self.wbuf.extend_from_slice(
                format!(
                    "ERR {} request line exceeds {MAX_LINE} bytes\n",
                    ErrCode::Parse.as_str()
                )
                .as_bytes(),
            );
            self.closing = true;
        }
    }

    /// Reacts to one readiness report. Returns `true` when the
    /// connection is finished and must be deregistered and dropped.
    fn handle(&mut self, events: u32, epfd: i32) -> bool {
        self.last_active = Instant::now();
        if events & EPOLLERR != 0 {
            return true;
        }
        if events & EPOLLOUT != 0 && self.flush().is_err() {
            return true;
        }
        if events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            match self.fill() {
                Ok(eof) => {
                    self.process_lines();
                    if eof {
                        self.closing = true;
                    }
                }
                Err(_) => return true,
            }
        }
        if self.flush().is_err() {
            return true;
        }
        // A peer that fires requests without draining responses gets
        // dropped once its unread backlog passes the high-water mark.
        if self.wbuf.len() - self.wpos > WRITE_HIGH_WATER {
            obs::WRITE_HIGHWATER_DROPS.inc();
            return true;
        }
        let pending = self.wpos < self.wbuf.len();
        if self.closing && !pending {
            return true;
        }
        if pending != self.armed_out {
            self.armed_out = pending;
            let fd = self.stream.as_raw_fd();
            if ctl(epfd, EPOLL_CTL_MOD, fd, self.interest(), fd as u64).is_err() {
                return true;
            }
        }
        false
    }
}

/// One metrics HTTP/1.0 connection, multiplexed on the same epoll
/// instance as the CQL connections (no extra thread): read the request
/// head, queue the full response, drain it, close.
struct HttpConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Response queued — nothing more to read, close once drained.
    responded: bool,
    armed_out: bool,
    last_active: Instant,
}

impl HttpConn {
    fn interest(&self) -> u32 {
        let mut i = EPOLLIN | EPOLLRDHUP;
        if self.armed_out {
            i |= EPOLLOUT;
        }
        i
    }

    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Reacts to one readiness report; `true` means deregister + drop.
    fn handle(&mut self, events: u32, epfd: i32, service: &Arc<IcdbService>) -> bool {
        if events & EPOLLERR != 0 {
            return true;
        }
        let mut progressed = false;
        if events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 && !self.responded {
            let mut eof = false;
            let mut chunk = [0u8; 4 * 1024];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                }
            }
            let head_complete = self.rbuf.windows(2).any(|w| w == b"\n\n")
                || self.rbuf.windows(4).any(|w| w == b"\r\n\r\n");
            if head_complete {
                let text = String::from_utf8_lossy(&self.rbuf);
                let request_line = text.lines().next().unwrap_or_default().to_string();
                self.wbuf = http_metrics_response(service, &request_line);
                self.responded = true;
            } else if self.rbuf.len() > HTTP_MAX_HEAD {
                return true;
            } else if eof {
                // The peer closed (or half-closed) with the head still
                // incomplete: no response can ever be produced, and with
                // level-triggered epoll the readiness would re-fire
                // forever — drop now. (LB/k8s connect-then-close health
                // probes land exactly here.)
                return true;
            }
        }
        let flushed_from = self.wpos;
        if self.flush().is_err() {
            return true;
        }
        progressed |= self.wpos != flushed_from;
        if self.responded && self.wpos == self.wbuf.len() {
            return true;
        }
        // Only a wakeup that made progress defers the idle sweep, so a
        // peer holding a stuck connection open still gets reaped.
        if progressed {
            self.last_active = Instant::now();
        }
        let pending = self.wpos < self.wbuf.len();
        if pending != self.armed_out {
            self.armed_out = pending;
            let fd = self.stream.as_raw_fd();
            if ctl(
                epfd,
                EPOLL_CTL_MOD,
                fd,
                self.interest(),
                fd as u64 | HTTP_FLAG,
            )
            .is_err()
            {
                return true;
            }
        }
        false
    }
}

/// Puts a freshly accepted metrics scrape under epoll.
fn register_http(epfd: i32, stream: TcpStream) -> Option<(u64, HttpConn)> {
    stream.set_nonblocking(true).ok()?;
    let fd = stream.as_raw_fd();
    let token = fd as u64 | HTTP_FLAG;
    let conn = HttpConn {
        stream,
        rbuf: Vec::new(),
        wbuf: Vec::new(),
        wpos: 0,
        responded: false,
        armed_out: false,
        last_active: Instant::now(),
    };
    ctl(epfd, EPOLL_CTL_ADD, fd, conn.interest(), token).ok()?;
    Some((token, conn))
}

// --------------------------------------------------------- worker pool

/// The acceptor → worker handoff channel: sockets parked here until the
/// worker's eventfd wakes it.
struct Inbox {
    streams: Mutex<Vec<TcpStream>>,
    wake_fd: i32,
}

fn lock_streams(inbox: &Inbox) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
    inbox.streams.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker: a private epoll instance multiplexing its share of the
/// connections until shutdown. Worker 0 additionally owns the optional
/// metrics HTTP listener and its scrape connections — multiplexed here
/// so the endpoint needs no thread model of its own.
fn worker_loop(
    inbox: Arc<Inbox>,
    service: Arc<IcdbService>,
    idle_timeout: Duration,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    metrics: Option<TcpListener>,
) {
    let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if epfd < 0 {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut https: HashMap<u64, HttpConn> = HashMap::new();
    let ok = ctl(epfd, EPOLL_CTL_ADD, inbox.wake_fd, EPOLLIN, WAKE_TOKEN).is_ok();
    // A listener that cannot be registered is simply dropped: scrapes fail,
    // the CQL side keeps serving.
    let metrics = metrics.and_then(|l| {
        l.set_nonblocking(true).ok()?;
        ctl(epfd, EPOLL_CTL_ADD, l.as_raw_fd(), EPOLLIN, METRICS_TOKEN).ok()?;
        Some(l)
    });
    while ok && !shutdown.load(Ordering::SeqCst) {
        let mut events = [EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        let wait_start = Instant::now();
        let n = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                EVENT_BATCH as i32,
                WAIT_TIMEOUT_MS,
            )
        };
        obs::EPOLL_WAIT_US.record(
            wait_start
                .elapsed()
                .as_micros()
                .try_into()
                .unwrap_or(u64::MAX),
        );
        if n < 0 {
            if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            break;
        }
        for ev in events.iter().take(n.max(0) as usize) {
            let token = ev.data;
            let readiness = ev.events;
            if token == WAKE_TOKEN {
                drain(inbox.wake_fd);
                let fresh: Vec<TcpStream> = lock_streams(&inbox).drain(..).collect();
                for stream in fresh {
                    if let Some((token, conn)) = register(epfd, stream, &service) {
                        conns.insert(token, conn);
                    } else {
                        active.fetch_sub(1, Ordering::SeqCst);
                        obs::CONNECTIONS.dec();
                    }
                }
                continue;
            }
            if token == METRICS_TOKEN {
                if let Some(listener) = metrics.as_ref() {
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if let Some((token, conn)) = register_http(epfd, stream) {
                                    https.insert(token, conn);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                }
                continue;
            }
            if token & HTTP_FLAG != 0 {
                let done = match https.get_mut(&token) {
                    Some(conn) => conn.handle(readiness, epfd, &service),
                    None => continue,
                };
                if done {
                    if let Some(conn) = https.remove(&token) {
                        let _ = ctl(epfd, EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
                    }
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.handle(readiness, epfd) {
                if let Some(conn) = conns.remove(&token) {
                    let _ = ctl(epfd, EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
                    drop(conn); // drops the Session → namespace cleanup
                    active.fetch_sub(1, Ordering::SeqCst);
                    obs::CONNECTIONS.dec();
                }
            }
        }
        // Idle sweep, on the epoll tick (`WAIT_TIMEOUT_MS`): a connection
        // silent past the timeout is treated exactly like a disconnect —
        // its session drops and the namespace is deleted.
        if idle_timeout > Duration::ZERO {
            let now = Instant::now();
            let stale: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| now.duration_since(c.last_active) > idle_timeout)
                .map(|(&token, _)| token)
                .collect();
            for token in stale {
                if let Some(conn) = conns.remove(&token) {
                    let _ = ctl(epfd, EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
                    drop(conn);
                    active.fetch_sub(1, Ordering::SeqCst);
                    obs::CONNECTIONS.dec();
                    obs::IDLE_TIMEOUT_KILLS.inc();
                }
            }
        }
        // Half-open scrapes get a fixed, short leash.
        if !https.is_empty() {
            let now = Instant::now();
            let stale: Vec<u64> = https
                .iter()
                .filter(|(_, c)| now.duration_since(c.last_active) > HTTP_IDLE_TIMEOUT)
                .map(|(&token, _)| token)
                .collect();
            for token in stale {
                if let Some(conn) = https.remove(&token) {
                    let _ = ctl(epfd, EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
                }
            }
        }
    }
    // Shutdown (or a broken epoll): the server is going away under the
    // remaining clients, so their sessions are *parked*, not closed —
    // on a durable server each namespace survives the restart and its
    // client can `attach` back to it (the contract
    // `tests/durability_e2e.rs` pins for SIGTERM).
    for (_, conn) in conns.drain() {
        let _ = ctl(epfd, EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
        let Conn { session, .. } = conn;
        session.park();
        active.fetch_sub(1, Ordering::SeqCst);
        obs::CONNECTIONS.dec();
    }
    for (_, conn) in https.drain() {
        let _ = ctl(epfd, EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
    }
    drop(metrics);
    unsafe {
        close(epfd);
    }
}

/// Puts a freshly admitted socket under epoll: non-blocking mode, a new
/// session, the greeting queued (and opportunistically flushed). Returns
/// `None` when the socket is already unusable.
fn register(epfd: i32, stream: TcpStream, service: &Arc<IcdbService>) -> Option<(u64, Conn)> {
    stream.set_nonblocking(true).ok()?;
    let session = service.open_session();
    let mut conn = Conn {
        stream,
        session,
        rbuf: Vec::new(),
        wbuf: Vec::new(),
        wpos: 0,
        closing: false,
        armed_out: false,
        last_active: Instant::now(),
    };
    conn.wbuf.extend_from_slice(
        format!("OK icdbd ready (session ns{})\n", conn.session.ns().raw()).as_bytes(),
    );
    conn.flush().ok()?;
    conn.armed_out = conn.wpos < conn.wbuf.len();
    let fd = conn.stream.as_raw_fd();
    ctl(epfd, EPOLL_CTL_ADD, fd, conn.interest(), fd as u64).ok()?;
    Some((fd as u64, conn))
}

// ------------------------------------------------------------ acceptor

/// The event-loop server: a blocking acceptor enforcing the admission
/// cap, fanning admitted sockets round-robin over `workers` epoll
/// workers. Returns only after every worker has exited — live sessions
/// are parked (namespaces kept for post-restart reattach) and every
/// enqueued commit is on the group-commit queue, which the caller's
/// checkpoint then drains before snapshotting.
pub(crate) fn serve(
    listener: TcpListener,
    service: Arc<IcdbService>,
    max_connections: usize,
    workers: usize,
    idle_timeout: Duration,
    shutdown: Arc<AtomicBool>,
    metrics: Option<TcpListener>,
) -> io::Result<()> {
    let active = Arc::new(AtomicUsize::new(0));
    let mut inboxes: Vec<Arc<Inbox>> = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    // Worker 0 multiplexes the metrics listener alongside its CQL share.
    let mut metrics = metrics;
    for _ in 0..workers.max(1) {
        let wake_fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if wake_fd < 0 {
            let err = io::Error::last_os_error();
            shutdown.store(true, Ordering::SeqCst);
            for inbox in &inboxes {
                ring(inbox.wake_fd);
            }
            join_workers(&inboxes, handles);
            return Err(err);
        }
        let inbox = Arc::new(Inbox {
            streams: Mutex::new(Vec::new()),
            wake_fd,
        });
        inboxes.push(Arc::clone(&inbox));
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        let metrics = metrics.take();
        handles.push(std::thread::spawn(move || {
            worker_loop(inbox, service, idle_timeout, shutdown, active, metrics)
        }));
    }
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // A transient accept failure (ECONNABORTED, fd exhaustion under
        // load) must not take down every live session: log, back off a
        // beat, keep accepting.
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                olog::warn(
                    "net",
                    "accept failed (continuing)",
                    &[("error", olog::Value::Str(&e.to_string()))],
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        // Admission policy: refuse politely instead of queueing forever.
        // `active` counts every admitted, not-yet-closed connection.
        if active.fetch_add(1, Ordering::SeqCst) >= max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            let mut s = stream;
            let _ = writeln!(
                s,
                "ERR {} server at connection capacity ({})",
                ErrCode::Capacity.as_str(),
                max_connections
            );
            continue;
        }
        obs::CONNECTIONS_ACCEPTED.inc();
        obs::CONNECTIONS.inc();
        let inbox = &inboxes[next % inboxes.len()];
        next = next.wrapping_add(1);
        lock_streams(inbox).push(stream);
        ring(inbox.wake_fd);
    }
    shutdown.store(true, Ordering::SeqCst);
    for inbox in &inboxes {
        ring(inbox.wake_fd);
    }
    join_workers(&inboxes, handles);
    Ok(())
}

fn join_workers(inboxes: &[Arc<Inbox>], handles: Vec<std::thread::JoinHandle<()>>) {
    for handle in handles {
        let _ = handle.join();
    }
    for inbox in inboxes {
        unsafe {
            close(inbox.wake_fd);
        }
    }
}
