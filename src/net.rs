//! `icdbd` — the line-oriented TCP server speaking CQL, and its client.
//!
//! The paper's `ICDB("command:…", &vars)` is a C function call; this
//! module puts the same calls on a socket so many synthesis tools can
//! share one component database. Each connection gets its own
//! [`Session`](icdb_core::Session) (isolated instance namespace over the
//! shared knowledge base). On Linux the server multiplexes all
//! connections over a small epoll worker pool (see
//! `crate::event_loop`): the connection cap is pure admission policy,
//! not a thread budget, so thousands of concurrent clients are fine.
//! Elsewhere it falls back to one thread per connection.
//!
//! ## Wire protocol
//!
//! One request per line, one response per request. All text fields are
//! escaped (`\\`, `\n`, `\t`, `\r`, and `\u{1f}` → `\u`), so commands and
//! answers may span "lines" logically while staying line-framed on the
//! wire.
//!
//! **Request** — the escaped CQL command, then one tab-separated typed
//! field per `%` input slot, in slot order:
//!
//! ```text
//! command:request_component; component_name:counter; attribute:(size:5); generated_component:?s
//! command:instance_query; generated_component:%s; delay:?s<TAB>s:counter$1
//! quit
//! ```
//!
//! Input fields are `s:<text>`, `d:<int>`, `r:<real>` or `l:<items>`
//! (string list, items separated by `\u{1f}`). The bare word `quit` (or
//! `exit`) closes the connection.
//!
//! **Response** — `ERR <code> <message>`, or `OK <n>` followed by `n`
//! lines, one per `?` output slot in slot order, each `<type> <value>`
//! with the same typing (`S`/`D`/`R` for `?s[]`/`?d[]`/`?r[]` lists):
//!
//! ```text
//! OK 1
//! s counter$1
//! ```
//!
//! The `ERR` code is machine-readable ([`ErrCode`]): `capacity` (the
//! connection cap refused the client), `parse` (the request line itself
//! is malformed — bad escapes, bad slot syntax, field/slot mismatch),
//! `cql` (the command executed and failed) or `readonly` (the server is
//! degraded after a durability fault and refuses commits). [`IcdbClient`]
//! maps them onto distinct [`IcdbError`] variants —
//! [`IcdbError::Unsupported`], [`IcdbError::Parse`], [`IcdbError::Cql`]
//! and [`IcdbError::ReadOnly`] respectively — so callers can tell refusal
//! from query failure.
//!
//! Acks for *mutating* commands carry the session namespace's commit
//! sequence in the header — `OK <n> commit:<seq>` — and an `attach`
//! response reports it as a second output line (`d <seq>`). Together they
//! let a client that lost a connection mid-commit reconnect, re-attach,
//! and tell "my commit applied, the ack was lost" from "my commit never
//! happened" (see [`RetryPolicy`]).
//!
//! [`IcdbClient::execute`] mirrors [`crate::Icdb::execute`] exactly — the
//! same command strings and the same `&mut [CqlArg]` calling convention —
//! so code written against the embedded API ports to the socket by
//! swapping the receiver.

use icdb_core::{IcdbError, IcdbService};
use icdb_cql::{scan_slots, CqlArg, SlotSpec, SlotType};
use icdb_obs::log as olog;
use icdb_obs::metrics as obs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default TCP port of `icdbd`.
pub const DEFAULT_PORT: u16 = 7433;

/// Default connection cap.
pub const DEFAULT_MAX_CONNECTIONS: usize = 32;

/// Default size of the epoll worker pool (`icdbd --workers`). Each
/// worker owns a private epoll instance and its share of the
/// connections; commands execute synchronously on the owning worker.
pub const DEFAULT_WORKERS: usize = 4;

/// Separator for list items inside one wire field.
const LIST_SEP: char = '\u{1f}';

/// A request line longer than this is refused: it is either a protocol
/// violation or a hostile stream, and buffering it unbounded would let
/// one connection exhaust the server. Shared by the epoll loop and the
/// thread-per-connection fallback.
pub(crate) const MAX_LINE: usize = 32 * 1024 * 1024;

/// Machine-readable reason code carried as the first word of an `ERR`
/// response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The connection cap refused the client before a session opened.
    Capacity,
    /// The request line is malformed (escaping, slot syntax, or
    /// field/slot arity) — the command never reached the executor.
    Parse,
    /// The command executed and failed (unknown command, missing
    /// instance, generation error, …).
    Cql,
    /// The server is read-only degraded (a durability fault latched) and
    /// refuses commits until an operator re-arms it (`persist
    /// checkpoint:1` against a healthy dir, or `persist clear_fault:1`).
    Readonly,
    /// The server is a replication follower and refuses direct mutations;
    /// send them to the primary (`persist upstream:?s` names it, or
    /// `hello` reports the role up front).
    NotPrimary,
}

impl ErrCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Capacity => "capacity",
            ErrCode::Parse => "parse",
            ErrCode::Cql => "cql",
            ErrCode::Readonly => "readonly",
            ErrCode::NotPrimary => "not_primary",
        }
    }

    /// Parses the wire spelling back.
    pub fn from_wire(word: &str) -> Option<ErrCode> {
        match word {
            "capacity" => Some(ErrCode::Capacity),
            "parse" => Some(ErrCode::Parse),
            "cql" => Some(ErrCode::Cql),
            "readonly" => Some(ErrCode::Readonly),
            "not_primary" => Some(ErrCode::NotPrimary),
            _ => None,
        }
    }
}

/// The wire code for a server-side execution error: `readonly` for
/// degraded-mode refusals, `cql` for everything else.
fn err_code_of(e: &IcdbError) -> ErrCode {
    match e {
        IcdbError::ReadOnly(_) => ErrCode::Readonly,
        IcdbError::NotPrimary(_) => ErrCode::NotPrimary,
        _ => ErrCode::Cql,
    }
}

/// Decodes the remainder of an `ERR ` line into the matching error
/// variant: `capacity` → [`IcdbError::Unsupported`], `parse` →
/// [`IcdbError::Parse`], `readonly` → [`IcdbError::ReadOnly`], `cql`
/// (and unknown codes, for forward compatibility) → [`IcdbError::Cql`].
fn decode_err(rest: &str) -> IcdbError {
    let (word, body) = rest.split_once(' ').unwrap_or((rest, ""));
    let message = unescape(body).unwrap_or_else(|_| body.to_string());
    match ErrCode::from_wire(word) {
        Some(ErrCode::Capacity) => IcdbError::Unsupported(message),
        Some(ErrCode::Parse) => IcdbError::Parse(message),
        Some(ErrCode::Cql) => IcdbError::Cql(message),
        Some(ErrCode::Readonly) => IcdbError::ReadOnly(message),
        Some(ErrCode::NotPrimary) => IcdbError::NotPrimary(message),
        None => IcdbError::Cql(unescape(rest).unwrap_or_else(|_| rest.to_string())),
    }
}

// ------------------------------------------------------------- escaping

/// Escapes a text field for the line protocol.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            LIST_SEP => out.push_str("\\u"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
///
/// # Errors
/// Fails on dangling or unknown escape sequences.
pub fn unescape(text: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => out.push(LIST_SEP),
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

// Every item is followed by a separator (not just joined), so the empty
// list ("") and a one-element list of the empty string ("\u{1f}") stay
// distinct on the wire.
fn encode_list(items: &[String]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&escape(item));
        out.push(LIST_SEP);
    }
    out
}

fn decode_list(field: &str) -> Result<Vec<String>, String> {
    if field.is_empty() {
        return Ok(Vec::new());
    }
    let body = field
        .strip_suffix(LIST_SEP)
        .ok_or_else(|| "unterminated list field".to_string())?;
    body.split(LIST_SEP).map(unescape).collect()
}

// ------------------------------------------------------ arg (de)coding

/// Encodes one input argument as a typed wire field.
fn encode_input(arg: &CqlArg) -> Option<String> {
    match arg {
        CqlArg::InStr(s) => Some(format!("s:{}", escape(s))),
        CqlArg::InInt(v) => Some(format!("d:{v}")),
        CqlArg::InReal(v) => Some(format!("r:{v}")),
        CqlArg::InStrList(v) => Some(format!("l:{}", encode_list(v))),
        _ => None,
    }
}

/// Decodes one typed wire field into an input argument.
fn decode_input(field: &str) -> Result<CqlArg, String> {
    let (ty, body) = field
        .split_once(':')
        .ok_or_else(|| format!("input field `{field}` lacks a type prefix"))?;
    match ty {
        "s" => Ok(CqlArg::InStr(unescape(body)?)),
        "d" => Ok(CqlArg::InInt(
            body.parse().map_err(|_| format!("bad integer `{body}`"))?,
        )),
        "r" => Ok(CqlArg::InReal(
            body.parse().map_err(|_| format!("bad real `{body}`"))?,
        )),
        "l" => Ok(CqlArg::InStrList(decode_list(body)?)),
        other => Err(format!("unknown input type `{other}`")),
    }
}

/// Fresh (None) output argument for a scanned slot.
fn blank_output(spec: SlotSpec) -> CqlArg {
    match (spec.ty, spec.array) {
        (SlotType::Int, false) => CqlArg::OutInt(None),
        (SlotType::Real, false) => CqlArg::OutReal(None),
        (SlotType::Int, true) => CqlArg::OutIntList(None),
        (SlotType::Real, true) => CqlArg::OutRealList(None),
        (_, true) => CqlArg::OutStrList(None),
        _ => CqlArg::OutStr(None),
    }
}

/// Encodes one filled output argument as a response line.
fn encode_output(arg: &CqlArg) -> String {
    match arg {
        CqlArg::OutStr(Some(s)) => format!("s {}", escape(s)),
        CqlArg::OutInt(Some(v)) => format!("d {v}"),
        CqlArg::OutReal(Some(v)) => format!("r {v}"),
        CqlArg::OutStrList(Some(v)) => format!("S {}", encode_list(v)),
        CqlArg::OutIntList(Some(v)) => format!(
            "D {}",
            v.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(&LIST_SEP.to_string())
        ),
        CqlArg::OutRealList(Some(v)) => format!(
            "R {}",
            v.iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(&LIST_SEP.to_string())
        ),
        _ => "-".to_string(),
    }
}

/// Writes a decoded response line back into the client's output argument.
fn decode_output(line: &str, arg: &mut CqlArg) -> Result<(), String> {
    if line == "-" {
        return Ok(()); // slot left unfilled by the executor
    }
    let (ty, body) = line
        .split_once(' ')
        .ok_or_else(|| format!("malformed output line `{line}`"))?;
    match (ty, arg) {
        ("s", CqlArg::OutStr(slot)) => *slot = Some(unescape(body)?),
        ("d", CqlArg::OutInt(slot)) => {
            *slot = Some(body.parse().map_err(|_| format!("bad integer `{body}`"))?)
        }
        ("r", CqlArg::OutReal(slot)) => {
            *slot = Some(body.parse().map_err(|_| format!("bad real `{body}`"))?)
        }
        ("S", CqlArg::OutStrList(slot)) => *slot = Some(decode_list(body)?),
        ("D", CqlArg::OutIntList(slot)) => {
            let mut out = Vec::new();
            for item in body.split(LIST_SEP).filter(|s| !s.is_empty()) {
                out.push(item.parse().map_err(|_| format!("bad integer `{item}`"))?);
            }
            *slot = Some(out);
        }
        ("R", CqlArg::OutRealList(slot)) => {
            let mut out = Vec::new();
            for item in body.split(LIST_SEP).filter(|s| !s.is_empty()) {
                out.push(item.parse().map_err(|_| format!("bad real `{item}`"))?);
            }
            *slot = Some(out);
        }
        (ty, arg) => return Err(format!("output type `{ty}` does not fit argument {arg:?}")),
    }
    Ok(())
}

// --------------------------------------------------------------- server

/// The `icdbd` TCP server: an [`IcdbService`] behind a line-oriented CQL
/// protocol, one session per connection, bounded by an admission cap.
/// Linux builds serve all connections from an epoll worker pool; other
/// platforms fall back to one thread per connection.
pub struct Server {
    listener: TcpListener,
    service: Arc<IcdbService>,
    max_connections: usize,
    workers: usize,
    idle_timeout: Duration,
    shutdown: Arc<AtomicBool>,
    /// When set, a plaintext HTTP/1.0 listener serving the Prometheus
    /// text exposition at `GET /metrics` (`icdbd --metrics-addr`).
    metrics: Option<TcpListener>,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// Address the server is accepting on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to stop and waits for it.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop();
        }
    }
}

impl Server {
    /// Binds a server for `service` on `addr` (use port 0 for an
    /// ephemeral port).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<IcdbService>,
        max_connections: usize,
    ) -> io::Result<Server> {
        Server::bind_with(addr, service, max_connections, DEFAULT_WORKERS)
    }

    /// [`Server::bind`] with an explicit epoll worker-pool size (ignored
    /// by the thread-per-connection fallback on non-Linux platforms).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<IcdbService>,
        max_connections: usize,
        workers: usize,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            max_connections: max_connections.max(1),
            workers: workers.max(1),
            idle_timeout: Duration::ZERO,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: None,
        })
    }

    /// Attaches an already-bound listener for the HTTP metrics endpoint
    /// (`icdbd --metrics-addr HOST:PORT`). On Linux it is multiplexed on
    /// the existing epoll loop (no new thread model); the portable
    /// fallback serves it from one blocking acceptor thread. Every
    /// request is answered with the Prometheus text exposition of
    /// [`IcdbService::metrics_text`] and closed.
    pub fn set_metrics_listener(&mut self, listener: TcpListener) {
        self.metrics = Some(listener);
    }

    /// Address of the attached metrics listener, when one is set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Disconnects a connection that has been silent for `timeout`
    /// (`Duration::ZERO`, the default, disables the sweep). An idle
    /// client is treated exactly like one that disconnected: its session
    /// drops and the namespace is deleted. `icdbd --idle-timeout SECS`.
    pub fn set_idle_timeout(&mut self, timeout: Duration) {
        self.idle_timeout = timeout;
    }

    /// Address the server is bound to.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the server on the current thread until shut down: the accept
    /// loop admits connections and the epoll workers serve them (Linux;
    /// elsewhere each admitted connection gets a thread). Returns only
    /// after every worker exited and dropped its sessions, so a caller
    /// that checkpoints afterwards sees all namespace cleanup journaled.
    ///
    /// # Errors
    /// Propagates accept errors.
    pub fn serve(self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            crate::event_loop::serve(
                self.listener,
                self.service,
                self.max_connections,
                self.workers,
                self.idle_timeout,
                self.shutdown,
                self.metrics,
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.serve_threaded()
        }
    }

    /// The portable thread-per-connection fallback. Compiled (and unit
    /// tested) on every platform so Linux builds keep it honest; only
    /// non-Linux [`Server::serve`] calls it in production.
    #[cfg_attr(target_os = "linux", allow(dead_code))]
    fn serve_threaded(mut self) -> io::Result<()> {
        let _ = self.workers;
        if let Some(metrics) = self.metrics.take() {
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || serve_metrics_blocking(&metrics, &service, &shutdown));
        }
        let active = Arc::new(AtomicUsize::new(0));
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // A transient accept failure (ECONNABORTED, fd exhaustion under
            // load) must not take down every live session: log, back off a
            // beat, keep accepting.
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    olog::warn(
                        "net",
                        "accept failed (continuing)",
                        &[("error", olog::Value::Str(&e.to_string()))],
                    );
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            // Connection cap: refuse politely instead of queueing forever.
            if active.fetch_add(1, Ordering::SeqCst) >= self.max_connections {
                active.fetch_sub(1, Ordering::SeqCst);
                let mut w = BufWriter::new(&stream);
                let _ = writeln!(
                    w,
                    "ERR {} server at connection capacity ({})",
                    ErrCode::Capacity.as_str(),
                    self.max_connections
                );
                let _ = w.flush();
                continue;
            }
            obs::CONNECTIONS_ACCEPTED.inc();
            obs::CONNECTIONS.inc();
            let service = Arc::clone(&self.service);
            let active = Arc::clone(&active);
            let idle_timeout = self.idle_timeout;
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &service, idle_timeout);
                active.fetch_sub(1, Ordering::SeqCst);
                obs::CONNECTIONS.dec();
            });
        }
        Ok(())
    }

    /// Moves the accept loop to a background thread and returns a handle
    /// carrying the bound address and a shutdown switch.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let join = std::thread::spawn(move || self.serve());
        Ok(ServerHandle {
            addr,
            shutdown,
            join: Some(join),
        })
    }
}

/// Serves one connection: opens a session, answers one command per line
/// until `quit` or EOF, then drops the session (deleting its namespace).
///
/// Besides CQL command lines, the protocol accepts `attach ns<N>` (or
/// `attach <N>`): re-bind the connection's session to an existing
/// namespace — the crash-recovery path, since a durable server preserves
/// namespace ids across restarts (see [`icdb_core::Session::attach`]).
/// The response is `OK 2` + `s ns<N>` + `d <commit_seq>` on success.
#[cfg_attr(target_os = "linux", allow(dead_code))]
fn handle_connection(
    stream: TcpStream,
    service: &Arc<IcdbService>,
    idle_timeout: Duration,
) -> io::Result<()> {
    let mut session = service.open_session();
    if idle_timeout > Duration::ZERO {
        // The blocking fallback bounds idleness with a socket read
        // timeout: a silent peer errors out of `read_bounded_line` and
        // the connection closes, same policy as the epoll sweep.
        stream.set_read_timeout(Some(idle_timeout))?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "OK icdbd ready (session ns{})", session.ns().raw())?;
    writer.flush()?;
    loop {
        let line = match read_bounded_line(&mut reader, MAX_LINE) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized request line: refuse and disconnect, exactly
                // like the epoll loop.
                writeln!(
                    writer,
                    "ERR {} request line exceeds {MAX_LINE} bytes",
                    ErrCode::Parse.as_str()
                )?;
                writer.flush()?;
                break;
            }
            Err(e) => return Err(e),
        };
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let outcome = dispatch_line(&mut session, line);
        match outcome {
            Ok(reply) => writer.write_all(reply.render().as_bytes())?,
            Err((code, message)) => writeln!(writer, "ERR {} {}", code.as_str(), escape(&message))?,
        }
        writer.flush()?;
    }
    Ok(())
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `limit` bytes: the bounded replacement for `BufRead::lines` in the
/// thread-per-connection fallback. Returns `Ok(None)` at EOF and
/// `ErrorKind::InvalidData` when the line exceeds the limit (the caller
/// refuses and disconnects).
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            if line.len() > limit {
                return Err(io::ErrorKind::InvalidData.into());
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        let n = available.len();
        line.extend_from_slice(available);
        reader.consume(n);
        if line.len() > limit {
            return Err(io::ErrorKind::InvalidData.into());
        }
    }
}

/// A successful wire response: the typed output lines, plus — for
/// mutating commands — the session namespace's commit sequence echoed in
/// the `OK <n> commit:<seq>` header so clients can detect lost acks.
pub(crate) struct Reply {
    pub(crate) lines: Vec<String>,
    pub(crate) commit: Option<u64>,
    /// Extra `key:value` header words rendered between the line count and
    /// the `commit:` word (replication replies carry cursors here).
    /// [`parse_ok_head`] skips unknown words, so old clients stay
    /// compatible.
    pub(crate) extra: Option<String>,
}

impl Reply {
    /// A plain reply: output lines only, no commit ack, no extra header.
    pub(crate) fn plain(lines: Vec<String>) -> Reply {
        Reply {
            lines,
            commit: None,
            extra: None,
        }
    }

    /// Renders the header and output lines, each newline-terminated.
    pub(crate) fn render(&self) -> String {
        let mut out = format!("OK {}", self.lines.len());
        if let Some(extra) = &self.extra {
            out.push(' ');
            out.push_str(extra);
        }
        if let Some(seq) = self.commit {
            out.push_str(&format!(" commit:{seq}"));
        }
        out.push('\n');
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// Handles the `attach` wire command: parses `ns<N>` / `<N>` and re-binds
/// the session (ownership of the namespace transfers to this connection).
/// The response reports the attached namespace and its current commit
/// sequence (`s ns<N>`, `d <seq>`) — the seq line is what lets a
/// reconnecting client decide whether an ack-lost commit applied.
pub(crate) fn attach_session(
    session: &mut icdb_core::Session,
    target: &str,
) -> Result<Reply, (ErrCode, String)> {
    let target = target.trim();
    let raw: u64 = target
        .strip_prefix("ns")
        .unwrap_or(target)
        .parse()
        .map_err(|_| {
            (
                ErrCode::Parse,
                format!("attach needs a namespace id like `ns3`, got `{target}`"),
            )
        })?;
    let ns = icdb_core::NsId::from_raw(raw);
    session
        .attach(ns)
        .map_err(|e| (err_code_of(&e), e.to_string()))?;
    let seq = session.commit_seq();
    Ok(Reply::plain(vec![format!("s ns{raw}"), format!("d {seq}")]))
}

/// Decodes one request line, executes it in the session, and encodes the
/// output lines. Errors carry their wire reason code: decoding problems
/// are `parse`, execution failures `cql` (or `readonly` when a degraded
/// server refuses a commit).
pub(crate) fn answer(session: &icdb_core::Session, line: &str) -> Result<Reply, (ErrCode, String)> {
    let parse = |m: String| (ErrCode::Parse, m);
    let mut fields = line.split('\t');
    let command = unescape(fields.next().unwrap_or_default()).map_err(parse)?;
    let slots = scan_slots(&command).map_err(|e| parse(e.to_string()))?;
    let mut args = Vec::with_capacity(slots.len());
    for spec in slots {
        if spec.input {
            let field = fields
                .next()
                .ok_or_else(|| parse("too few input fields for the command's % slots".into()))?;
            args.push(decode_input(field).map_err(parse)?);
        } else {
            args.push(blank_output(spec));
        }
    }
    if fields.next().is_some() {
        return Err(parse("more input fields than % slots".into()));
    }
    session
        .execute(&command, &mut args)
        .map_err(|e| (err_code_of(&e), e.to_string()))?;
    let commit = if icdb_core::command_text_is_read_only(&command) {
        None
    } else {
        Some(session.commit_seq())
    };
    Ok(Reply {
        lines: args
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    CqlArg::OutStr(_)
                        | CqlArg::OutInt(_)
                        | CqlArg::OutReal(_)
                        | CqlArg::OutStrList(_)
                        | CqlArg::OutIntList(_)
                        | CqlArg::OutRealList(_)
                )
            })
            .map(encode_output)
            .collect(),
        commit,
        extra: None,
    })
}

/// Wire protocol version reported by the `hello` command. Bump when a
/// change is not backward-compatible for old clients (new commands and
/// new `OK`-header words are compatible and do not bump it).
pub const PROTOCOL_VERSION: u64 = 1;

/// Longest long-poll a single `repl_stream` request may hold a server
/// worker (the follower re-polls to wait longer).
const MAX_STREAM_WAIT_MS: u64 = 1_000;

/// Default and maximum `wait_seq` timeouts.
const DEFAULT_WAIT_SEQ_TIMEOUT_MS: u64 = 5_000;
const MAX_WAIT_SEQ_TIMEOUT_MS: u64 = 60_000;

/// Routes one request line to its handler — the single dispatch shared by
/// the epoll event loop and the thread-per-connection fallback, so both
/// server paths speak the identical protocol: `attach`, `hello`,
/// `wait_seq`, the replication commands, and plain CQL via [`answer`].
///
/// Every request is metered here: a per-command counter + latency
/// histogram, per-code error counters, and — past `--slow-query-ms` — a
/// WARN log line carrying the request's trace id. The long-poll verbs
/// (`wait_seq`, `repl_stream`) are excluded from slow-query logging:
/// blocking is their contract.
pub(crate) fn dispatch_line(
    session: &mut icdb_core::Session,
    line: &str,
) -> Result<Reply, (ErrCode, String)> {
    let trace_id = obs::next_trace_id();
    let started = std::time::Instant::now();
    let cmd_idx = command_index_of_line(line);
    let result = dispatch_line_inner(session, line);
    let elapsed = started.elapsed();
    obs::REQUESTS[cmd_idx].inc();
    obs::REQUEST_LATENCY_US[cmd_idx].record(elapsed.as_micros().try_into().unwrap_or(u64::MAX));
    if let Err((code, _)) = &result {
        obs::ERRORS[obs::error_index(code.as_str())].inc();
    }
    let name = obs::COMMANDS[cmd_idx];
    let threshold = obs::slow_query_threshold_ms();
    let elapsed_ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
    if threshold > 0 && elapsed_ms >= threshold && name != "wait_seq" && name != "repl_stream" {
        obs::SLOW_QUERIES.inc();
        olog::warn(
            "net",
            "slow query",
            &[
                ("trace_id", olog::Value::U64(trace_id)),
                ("command", olog::Value::Str(name)),
                ("ns", olog::Value::U64(session.ns().raw())),
                ("ms", olog::Value::U64(elapsed_ms)),
                ("ok", olog::Value::Bool(result.is_ok())),
            ],
        );
    }
    result
}

/// The registry slot a request line bills to: wire verbs by their first
/// word, CQL lines by their `command:` term — scanned on the cheap
/// escaped prefix (command names never contain escapes) so the label
/// costs a few string compares, not a parse.
fn command_index_of_line(line: &str) -> usize {
    let head = line.split('\t').next().unwrap_or_default();
    for verb in [
        "attach",
        "hello",
        "wait_seq",
        "repl_snapshot",
        "repl_stream",
    ] {
        if head == verb
            || (head.len() > verb.len()
                && head.starts_with(verb)
                && head.as_bytes()[verb.len()] == b' ')
        {
            return obs::command_index(verb);
        }
    }
    for term in head.split(';') {
        if let Some((k, v)) = term.split_once(':') {
            if k.trim() == "command" {
                return obs::command_index(v.trim());
            }
        }
    }
    obs::command_index("other")
}

fn dispatch_line_inner(
    session: &mut icdb_core::Session,
    line: &str,
) -> Result<Reply, (ErrCode, String)> {
    if let Some(target) = line.strip_prefix("attach ") {
        return attach_session(session, target);
    }
    if line == "hello" {
        return hello_reply(session);
    }
    if let Some(rest) = line.strip_prefix("wait_seq ") {
        return wait_seq_reply(session, rest);
    }
    if line == "repl_snapshot" {
        return repl_snapshot_reply(session);
    }
    if line == "repl_stream" || line.starts_with("repl_stream ") {
        return repl_stream_reply(
            session,
            line.strip_prefix("repl_stream").unwrap_or_default(),
        );
    }
    answer(session, line)
}

/// `hello`: the versioned handshake. Replies `OK 3` + `d <protocol>` +
/// `s <role>` + `d <commit_seq>` — a client learns up front whether it is
/// talking to a `primary`, a `follower` (mutations will be refused with
/// `ERR not_primary`), or a `degraded` primary, plus the session
/// namespace's current commit sequence.
fn hello_reply(session: &icdb_core::Session) -> Result<Reply, (ErrCode, String)> {
    Ok(Reply::plain(vec![
        format!("d {PROTOCOL_VERSION}"),
        format!("s {}", session.service().role()),
        format!("d {}", session.commit_seq()),
    ]))
}

/// `wait_seq <seq> [timeout_ms]`: blocks until the session namespace's
/// commit sequence reaches `seq`, then replies `OK 1` + `d <seq>`. On a
/// follower the sequence advances as replicated events apply, so this is
/// the read-your-writes barrier: a client that saw `commit:<S>` acked by
/// the primary calls `wait_seq S` on the follower before reading there.
/// Times out with `ERR cql` after `timeout_ms` (default 5000, max 60000).
fn wait_seq_reply(session: &icdb_core::Session, rest: &str) -> Result<Reply, (ErrCode, String)> {
    let parse = |m: String| (ErrCode::Parse, m);
    let mut words = rest.split_whitespace();
    let target: u64 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| parse(format!("wait_seq needs a sequence number, got `{rest}`")))?;
    let timeout_ms: u64 = match words.next() {
        Some(w) => w
            .parse()
            .map_err(|_| parse(format!("bad wait_seq timeout `{w}`")))?,
        None => DEFAULT_WAIT_SEQ_TIMEOUT_MS,
    };
    if words.next().is_some() {
        return Err(parse("wait_seq takes `<seq> [timeout_ms]`".into()));
    }
    let timeout = Duration::from_millis(timeout_ms.min(MAX_WAIT_SEQ_TIMEOUT_MS));
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let seq = session.commit_seq();
        if seq >= target {
            return Ok(Reply::plain(vec![format!("d {seq}")]));
        }
        if std::time::Instant::now() >= deadline {
            return Err((
                ErrCode::Cql,
                format!("wait_seq {target} timed out after {timeout_ms}ms at seq {seq}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(3));
    }
}

/// `repl_snapshot`: serves a follower bootstrap image. The header is
/// `OK <1+R> gen:<G> seq:<S> epoch:<E>`; line 1 is the hex-encoded
/// snapshot payload of generation `G` (empty when none was written yet),
/// followed by `R` hex-encoded WAL records — the durable tail beyond the
/// snapshot. `S` is the durable WAL sequence the image covers: the
/// follower streams `repl_stream from:S` next. `E` is the primary's boot
/// epoch (WAL sequences are process-local; a changed epoch invalidates a
/// follower's cursor).
fn repl_snapshot_reply(session: &icdb_core::Session) -> Result<Reply, (ErrCode, String)> {
    let snap = session
        .service()
        .repl_snapshot()
        .map_err(|e| (err_code_of(&e), e.to_string()))?;
    let mut lines = Vec::with_capacity(1 + snap.wal_tail.len());
    lines.push(format!("s {}", hex_encode(&snap.snapshot)));
    for record in &snap.wal_tail {
        lines.push(format!("s {}", hex_encode(record)));
    }
    Ok(Reply {
        lines,
        commit: None,
        extra: Some(format!(
            "gen:{} seq:{} epoch:{}",
            snap.generation, snap.durable_seq, snap.epoch
        )),
    })
}

/// `repl_stream [from:<S>] [max:<N>] [wait_ms:<T>]`: long-polls the
/// primary's replication feed for durable events after sequence `S`.
/// The header is `OK <k> seq:<D> epoch:<E>` — `D` the primary's durable
/// sequence, `E` its boot epoch — followed by `k` lines `e <seq> <hex>`,
/// one fsynced [`icdb_core::MutationEvent`] payload each, in sequence
/// order. An empty reply after `wait_ms` means "caught up"; `D` jumping
/// past `S` with no events means the gap was never durable (a cleared
/// fault) and the follower skips its cursor forward. Requesting pruned
/// history is an `ERR cql … replication history pruned …` — re-bootstrap.
fn repl_stream_reply(session: &icdb_core::Session, rest: &str) -> Result<Reply, (ErrCode, String)> {
    let parse = |m: String| (ErrCode::Parse, m);
    let mut from = 0u64;
    let mut max = 512usize;
    let mut wait_ms = 0u64;
    for word in rest.split_whitespace() {
        if let Some(v) = word.strip_prefix("from:") {
            from = v
                .parse()
                .map_err(|_| parse(format!("bad repl_stream from `{v}`")))?;
        } else if let Some(v) = word.strip_prefix("max:") {
            max = v
                .parse()
                .map_err(|_| parse(format!("bad repl_stream max `{v}`")))?;
        } else if let Some(v) = word.strip_prefix("wait_ms:") {
            wait_ms = v
                .parse()
                .map_err(|_| parse(format!("bad repl_stream wait_ms `{v}`")))?;
        } else {
            return Err(parse(format!(
                "repl_stream takes `from:<seq> max:<n> wait_ms:<t>`, got `{word}`"
            )));
        }
    }
    let wait = Duration::from_millis(wait_ms.min(MAX_STREAM_WAIT_MS));
    let (batch, epoch) = session
        .service()
        .repl_stream(from, max.clamp(1, 4096), wait)
        .map_err(|e| (err_code_of(&e), e.to_string()))?;
    Ok(Reply {
        lines: batch
            .events
            .iter()
            .map(|(seq, payload)| format!("e {seq} {}", hex_encode(payload)))
            .collect(),
        commit: None,
        extra: Some(format!("seq:{} epoch:{epoch}", batch.durable_seq)),
    })
}

/// Lowercase-hex encodes a binary payload for a reply line. The wire
/// protocol is line-oriented UTF-8 and [`escape`] is not binary-safe, so
/// replication payloads (serialized events, snapshot images) travel as
/// hex.
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(HEX[usize::from(b >> 4)] as char);
        out.push(HEX[usize::from(b & 0xf)] as char);
    }
    out
}

/// Decodes a lowercase-hex payload line back into bytes.
pub(crate) fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if s.len() % 2 != 0 {
        return Err(format!("odd-length hex payload ({} chars)", s.len()));
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| format!("bad hex payload at byte {i}"))
        })
        .collect()
}

// ------------------------------------------------------ metrics over HTTP

/// Builds the complete HTTP/1.0 response for one metrics-listener
/// request line. `GET /metrics` (or `GET /`) answers 200 with the
/// Prometheus text exposition of [`IcdbService::metrics_text`] — the
/// exact sample list the `metrics` CQL command renders — anything else
/// 404. Shared by the epoll-multiplexed path and the blocking fallback
/// so the two serve paths cannot drift.
pub(crate) fn http_metrics_response(service: &IcdbService, request_line: &str) -> Vec<u8> {
    let mut words = request_line.split_whitespace();
    let method = words.next().unwrap_or_default();
    let path = words.next().unwrap_or_default();
    let (status, content_type, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            service.metrics_text(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; scrape GET /metrics\n".to_string(),
        )
    };
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The metrics endpoint of the thread-per-connection fallback: one
/// blocking acceptor, one request per connection, response + close.
/// (On Linux the epoll loop serves the same listener without threads.)
#[cfg_attr(target_os = "linux", allow(dead_code))]
fn serve_metrics_blocking(
    listener: &TcpListener,
    service: &Arc<IcdbService>,
    shutdown: &Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        // Scrapers are trusted but bounded: a peer that never finishes
        // its request head gets cut off by the read timeout.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(2_000)));
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(clone);
        let mut request_line = String::new();
        if reader.read_line(&mut request_line).is_err() {
            continue;
        }
        // Drain the header block so the peer never sees a reset with an
        // unread request body in flight. The drain is bounded two ways —
        // total head bytes (mirroring the epoll path's HTTP_MAX_HEAD)
        // and an overall deadline — so a peer dripping one header line
        // per read-timeout window cannot hold the single acceptor
        // thread indefinitely.
        const DRAIN_MAX_BYTES: usize = 8 * 1024;
        let deadline = Instant::now() + Duration::from_millis(2_000);
        let mut drained = request_line.len();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || drained > DRAIN_MAX_BYTES {
                break;
            }
            let _ = stream.set_read_timeout(Some(remaining));
            let mut header = String::new();
            match reader.read_line(&mut header) {
                Ok(0) => break,
                Ok(_) if header == "\r\n" || header == "\n" => break,
                Ok(n) => drained += n,
                Err(_) => break,
            }
        }
        let _ = stream.write_all(&http_metrics_response(service, request_line.trim_end()));
        let _ = stream.flush();
    }
}

// --------------------------------------------------------------- client

/// Timeouts and bounded-retry knobs for [`IcdbClient`].
///
/// The default policy retries transient failures — connection refused,
/// connect/read timeouts, a `capacity` refusal, a dropped connection —
/// with bounded exponential backoff and *deterministic* jitter (seeded
/// xorshift, no wall clock): give each client a distinct `jitter_seed`
/// to desynchronize a reconnect stampede, or share one in tests for
/// reproducible schedules.
///
/// Read-only commands are re-sent freely after a reconnect + re-attach.
/// Mutating commands are **never blindly re-sent**: after an ambiguous
/// drop the client re-attaches and compares the namespace's commit
/// sequence (`d <seq>` in the attach response) with the last sequence it
/// saw acked — only an unchanged sequence proves the lost command never
/// committed and makes a re-send safe.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Per-attempt TCP connect timeout (`None`: the OS default).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout (`None`: block forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None`: block forever).
    pub write_timeout: Option<Duration>,
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles every retry after.
    pub backoff_base: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_retries: 5,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0x1cdb,
        }
    }
}

impl RetryPolicy {
    /// No timeouts and no retries — [`IcdbClient::connect`]'s behaviour:
    /// every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_max: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// The delay before retry number `attempt` (1-based): exponential
    /// from `backoff_base`, capped at `backoff_max`, jittered into the
    /// upper half of the window by a seeded xorshift — deterministic for
    /// a given (`jitter_seed`, `attempt`) pair.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.backoff_base.saturating_mul(
            1u32.checked_shl(attempt.saturating_sub(1).min(20))
                .unwrap_or(u32::MAX),
        );
        let capped = exp.min(self.backoff_max);
        let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
        let half = nanos / 2;
        if half == 0 {
            return capped;
        }
        let mut x = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Duration::from_nanos(half + x % half)
    }
}

/// How one executed command failed — decides retry eligibility.
enum ExecFailure {
    /// The transport died (send or receive): the response may be lost,
    /// and for a mutating command the outcome is ambiguous.
    Net(IcdbError),
    /// The server answered (an `ERR` line, or malformed data): the
    /// outcome is known and retrying cannot change it.
    Server(IcdbError),
}

/// Where a cluster-aware client routes read-only commands.
///
/// Mutations always go to the primary regardless of this setting — only
/// the primary accepts them (followers answer `ERR not_primary`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPreference {
    /// Every command goes to the primary (the classic single-node
    /// behaviour, and the default).
    #[default]
    Primary,
    /// Read-only commands try a configured follower first and fall back
    /// to the primary when the follower is unreachable or errors.
    PreferFollower,
}

/// The result of the `hello` handshake ([`IcdbClient::hello`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloInfo {
    /// The server's wire [`PROTOCOL_VERSION`].
    pub protocol: u64,
    /// `"primary"`, `"follower"`, or `"degraded"`.
    pub role: String,
    /// The session namespace's current commit sequence.
    pub commit_seq: u64,
}

/// Configures and connects an [`IcdbClient`] — the cluster-aware front
/// door. [`IcdbClient::connect`] / [`IcdbClient::connect_with`] are thin
/// wrappers over this builder with a single primary endpoint.
///
/// ```no_run
/// use icdb::net::{IcdbClient, ReadPreference, RetryPolicy};
///
/// let mut client = IcdbClient::builder()
///     .primary("127.0.0.1:7433")
///     .follower("127.0.0.1:7434")
///     .retry_policy(RetryPolicy::default())
///     .read_preference(ReadPreference::PreferFollower)
///     .read_your_writes(true)
///     .connect()?;
/// # Ok::<(), icdb::IcdbError>(())
/// ```
#[derive(Debug, Default)]
pub struct ClientBuilder {
    primary: Vec<SocketAddr>,
    followers: Vec<SocketAddr>,
    policy: Option<RetryPolicy>,
    read_preference: ReadPreference,
    read_your_writes: bool,
    defer_err: Option<IcdbError>,
}

impl ClientBuilder {
    /// Adds primary endpoint address(es). Resolution failures are
    /// deferred and reported by [`ClientBuilder::connect`].
    pub fn primary(mut self, addr: impl ToSocketAddrs) -> ClientBuilder {
        match addr.to_socket_addrs() {
            Ok(resolved) => self.primary.extend(resolved),
            Err(e) => {
                self.defer_err.get_or_insert(net_err(e));
            }
        };
        self
    }

    /// Adds follower endpoint address(es) for [`ReadPreference`] routing.
    pub fn follower(mut self, addr: impl ToSocketAddrs) -> ClientBuilder {
        match addr.to_socket_addrs() {
            Ok(resolved) => self.followers.extend(resolved),
            Err(e) => {
                self.defer_err.get_or_insert(net_err(e));
            }
        };
        self
    }

    /// Sets the retry policy (default: [`RetryPolicy::none`], matching
    /// [`IcdbClient::connect`]).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> ClientBuilder {
        self.policy = Some(policy);
        self
    }

    /// Sets where read-only commands are routed.
    pub fn read_preference(mut self, preference: ReadPreference) -> ClientBuilder {
        self.read_preference = preference;
        self
    }

    /// With read-your-writes on (the default when follower reads are
    /// enabled would be surprising otherwise — it defaults to **off**),
    /// every follower read first issues `wait_seq <last acked commit>` so
    /// the follower has provably replayed this client's own mutations.
    pub fn read_your_writes(mut self, on: bool) -> ClientBuilder {
        self.read_your_writes = on;
        self
    }

    /// Connects to the primary under the configured policy and returns
    /// the client. Follower connections are opened lazily, on the first
    /// routed read.
    ///
    /// # Errors
    /// Address resolution failures recorded by the builder; otherwise
    /// exactly like [`IcdbClient::connect_with`].
    pub fn connect(self) -> Result<IcdbClient, IcdbError> {
        if let Some(e) = self.defer_err {
            return Err(e);
        }
        if self.primary.is_empty() {
            return Err(IcdbError::Cql("no socket address to connect to".into()));
        }
        let policy = self.policy.unwrap_or_else(RetryPolicy::none);
        let mut attempt = 0u32;
        loop {
            match IcdbClient::open(&self.primary, &policy) {
                Ok(mut client) => {
                    client.follower_addrs = self.followers;
                    client.read_preference = self.read_preference;
                    client.read_your_writes = self.read_your_writes;
                    return Ok(client);
                }
                Err((retriable, e)) => {
                    if !retriable || attempt >= policy.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    std::thread::sleep(policy.backoff(attempt));
                }
            }
        }
    }
}

/// A blocking `icdbd` client whose [`IcdbClient::execute`] mirrors the
/// embedded [`crate::Icdb::execute`] calling convention. Connect with a
/// [`RetryPolicy`] to get timeouts, bounded backoff, and transparent
/// reconnect + re-attach across server restarts; configure follower
/// endpoints via [`IcdbClient::builder`] to route reads to a replica.
#[derive(Debug)]
pub struct IcdbClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session_ns: Option<icdb_core::NsId>,
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    last_commit_seq: u64,
    follower_addrs: Vec<SocketAddr>,
    follower: Option<Box<IcdbClient>>,
    read_preference: ReadPreference,
    read_your_writes: bool,
}

impl IcdbClient {
    /// Connects and consumes the server greeting. No timeouts, no
    /// retries ([`RetryPolicy::none`]); use [`IcdbClient::connect_with`]
    /// for a fault-tolerant connection.
    ///
    /// # Errors
    /// Socket errors, or the server refusing the connection (cap reached).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<IcdbClient, IcdbError> {
        IcdbClient::connect_with(addr, RetryPolicy::none())
    }

    /// Connects under `policy`: each attempt dials with the connect
    /// timeout, and transient failures (refused, timed out, `ERR
    /// capacity`, a connection dropped mid-greeting) are retried up to
    /// `policy.max_retries` times with jittered exponential backoff.
    ///
    /// # Errors
    /// The last failure once the retry budget is spent; non-transient
    /// failures immediately.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<IcdbClient, IcdbError> {
        IcdbClient::builder()
            .primary(addr)
            .retry_policy(policy)
            .connect()
    }

    /// Starts a [`ClientBuilder`]: the cluster-aware constructor with
    /// follower endpoints, read routing, and read-your-writes.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// One connection attempt: dial, apply socket timeouts, consume the
    /// greeting. The boolean classifies the failure as transient.
    fn open(addrs: &[SocketAddr], policy: &RetryPolicy) -> Result<IcdbClient, (bool, IcdbError)> {
        let mut last: Option<io::Error> = None;
        let mut stream = None;
        for addr in addrs {
            let dialed = match policy.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                None => TcpStream::connect(addr),
            };
            match dialed {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let Some(stream) = stream else {
            let e = last.unwrap_or_else(|| io::ErrorKind::AddrNotAvailable.into());
            let transient = matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
            );
            return Err((transient, net_err(e)));
        };
        let fallible = |e: io::Error| (false, net_err(e));
        stream
            .set_read_timeout(policy.read_timeout)
            .map_err(fallible)?;
        stream
            .set_write_timeout(policy.write_timeout)
            .map_err(fallible)?;
        let mut client = IcdbClient {
            reader: BufReader::new(stream.try_clone().map_err(fallible)?),
            writer: BufWriter::new(stream),
            session_ns: None,
            addrs: addrs.to_vec(),
            policy: policy.clone(),
            last_commit_seq: 0,
            follower_addrs: Vec::new(),
            follower: None,
            read_preference: ReadPreference::Primary,
            read_your_writes: false,
        };
        // A connection dropped mid-greeting (server restarting) is as
        // transient as a refused one.
        let greeting = client.read_line().map_err(|e| (true, e))?;
        if let Some(rest) = greeting.strip_prefix("ERR ") {
            // A `capacity` refusal surfaces as `IcdbError::Unsupported` so
            // callers can tell "try again later" from a real failure.
            return Err(match decode_err(rest) {
                IcdbError::Unsupported(m) => (
                    true,
                    IcdbError::Unsupported(format!("icdbd refused the connection: {m}")),
                ),
                other => (false, other),
            });
        }
        // Greeting form: `OK icdbd ready (session ns<N>)` — remember the
        // namespace so the client can re-attach after a server restart.
        client.session_ns = greeting
            .rsplit_once("ns")
            .and_then(|(_, raw)| raw.trim_end_matches(')').parse().ok())
            .map(icdb_core::NsId::from_raw);
        Ok(client)
    }

    /// Dials a fresh connection and re-attaches the remembered session
    /// namespace. Returns the server-reported commit sequence of that
    /// namespace (`None` when there was no namespace to re-attach).
    fn reconnect(&mut self) -> Result<Option<u64>, IcdbError> {
        let mut fresh = IcdbClient::open(&self.addrs, &self.policy).map_err(|(_, e)| e)?;
        let mut server_seq = None;
        if let Some(ns) = self.session_ns {
            fresh.attach(ns)?;
            server_seq = Some(fresh.last_commit_seq);
        } else {
            self.session_ns = fresh.session_ns;
        }
        self.reader = fresh.reader;
        self.writer = fresh.writer;
        Ok(server_seq)
    }

    /// The server-side namespace of this connection's session, parsed from
    /// the greeting (and updated by [`IcdbClient::attach`]). This is the id
    /// to attach to when reconnecting to a durable server after a crash.
    pub fn session_ns(&self) -> Option<icdb_core::NsId> {
        self.session_ns
    }

    /// The policy this client connected with.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The last commit sequence the server acked for this session's
    /// namespace (`OK <n> commit:<seq>` headers and `attach` responses).
    pub fn last_commit_seq(&self) -> u64 {
        self.last_commit_seq
    }

    /// Executes one CQL command remotely: `%` inputs are read from `args`,
    /// `?` outputs are written back into them — exactly like
    /// [`crate::Icdb::execute`], but over the socket.
    ///
    /// # Errors
    /// Server-side errors arrive typed by their wire reason code
    /// ([`ErrCode`]): command failures as [`IcdbError::Cql`], malformed
    /// request lines as [`IcdbError::Parse`], degraded-mode commit
    /// refusals as [`IcdbError::ReadOnly`]. Socket errors are wrapped as
    /// [`IcdbError::Cql`]; under a retrying [`RetryPolicy`] they first
    /// trigger reconnect + re-attach, and a mutating command whose lost
    /// response turns out to have committed (the re-attached namespace's
    /// commit sequence advanced past the last acked one) surfaces a
    /// distinct "acknowledgement was lost" error instead of re-sending.
    pub fn execute(&mut self, command: &str, args: &mut [CqlArg]) -> Result<(), IcdbError> {
        let read_only = icdb_core::command_text_is_read_only(command);
        if read_only
            && self.read_preference == ReadPreference::PreferFollower
            && !self.follower_addrs.is_empty()
            && self.follower_read(command, args).is_ok()
        {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            let failure = match self.execute_once(command, args) {
                Ok(()) => return Ok(()),
                Err(ExecFailure::Server(e)) => return Err(e),
                Err(ExecFailure::Net(e)) => e,
            };
            if attempt >= self.policy.max_retries {
                return Err(failure);
            }
            attempt += 1;
            std::thread::sleep(self.policy.backoff(attempt));
            let seen = self.last_commit_seq;
            let server_seq = match self.reconnect() {
                Ok(seq) => seq,
                // The reconnect itself failed: spend the attempt and loop —
                // execute_once will fail fast on the dead transport and the
                // next attempt reconnects again.
                Err(_) => continue,
            };
            if !read_only {
                match server_seq {
                    // Unchanged sequence: the lost command provably never
                    // committed, so one re-send is safe.
                    Some(now) if now <= seen => {}
                    Some(now) => {
                        self.last_commit_seq = now;
                        return Err(IcdbError::Cql(format!(
                            "commit applied on the server (commit_seq {now}, last acked {seen}) \
                             but its acknowledgement was lost: {failure}"
                        )));
                    }
                    // No session namespace to compare against: stay safe,
                    // never blindly re-send a mutation.
                    None => return Err(failure),
                }
            }
        }
    }

    /// One send/receive round of [`IcdbClient::execute`], with failures
    /// split into transport-died versus server-answered.
    fn execute_once(&mut self, command: &str, args: &mut [CqlArg]) -> Result<(), ExecFailure> {
        let net = |e: io::Error| ExecFailure::Net(net_err(e));
        let mut line = escape(command);
        for arg in args.iter() {
            if let Some(field) = encode_input(arg) {
                line.push('\t');
                line.push_str(&field);
            }
        }
        writeln!(self.writer, "{line}").map_err(net)?;
        self.writer.flush().map_err(net)?;

        let head = self.read_line().map_err(ExecFailure::Net)?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Err(ExecFailure::Server(decode_err(rest)));
        }
        let (count, commit) = parse_ok_head(&head).map_err(ExecFailure::Server)?;
        let mut outputs = Vec::with_capacity(count);
        for _ in 0..count {
            outputs.push(self.read_line().map_err(ExecFailure::Net)?);
        }
        let mut out_iter = outputs.iter();
        for arg in args.iter_mut() {
            let is_output = matches!(
                arg,
                CqlArg::OutStr(_)
                    | CqlArg::OutInt(_)
                    | CqlArg::OutReal(_)
                    | CqlArg::OutStrList(_)
                    | CqlArg::OutIntList(_)
                    | CqlArg::OutRealList(_)
            );
            if is_output {
                let line = out_iter.next().ok_or_else(|| {
                    ExecFailure::Server(IcdbError::Cql(
                        "icdbd returned fewer outputs than ? slots".into(),
                    ))
                })?;
                decode_output(line, arg).map_err(|m| ExecFailure::Server(IcdbError::Cql(m)))?;
            }
        }
        if let Some(seq) = commit {
            self.last_commit_seq = seq;
        }
        Ok(())
    }

    /// One follower-routed read: lazily connects to a follower endpoint,
    /// attaches it to this client's session namespace (retrying briefly —
    /// the namespace itself replicates asynchronously and may not have
    /// arrived yet), optionally waits for the last acked commit sequence
    /// (read-your-writes), then executes the command once. Any failure
    /// drops the follower connection and the caller falls back to the
    /// primary.
    fn follower_read(&mut self, command: &str, args: &mut [CqlArg]) -> Result<(), IcdbError> {
        let result = self.follower_read_inner(command, args);
        if result.is_err() {
            self.follower = None;
        }
        result
    }

    fn follower_read_inner(&mut self, command: &str, args: &mut [CqlArg]) -> Result<(), IcdbError> {
        if self.follower.is_none() {
            let fresh = IcdbClient::open(&self.follower_addrs, &self.policy).map_err(|(_, e)| e)?;
            self.follower = Some(Box::new(fresh));
        }
        let want_seq = if self.read_your_writes {
            self.last_commit_seq
        } else {
            0
        };
        let target_ns = self.session_ns;
        let follower = self.follower.as_mut().expect("follower connected above");
        if let Some(ns) = target_ns {
            if follower.session_ns != Some(ns) {
                let mut attempt = 0u32;
                loop {
                    match follower.attach(ns) {
                        Ok(()) => break,
                        Err(e) => {
                            attempt += 1;
                            if attempt > 10 {
                                return Err(e);
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            }
            if want_seq > 0 {
                follower.wait_seq(want_seq, Duration::from_millis(DEFAULT_WAIT_SEQ_TIMEOUT_MS))?;
            }
        }
        match follower.execute_once(command, args) {
            Ok(()) => Ok(()),
            Err(ExecFailure::Net(e) | ExecFailure::Server(e)) => Err(e),
        }
    }

    /// The versioned `hello` handshake: returns the server's wire
    /// protocol version, its replication role (`primary` / `follower` /
    /// `degraded`), and the session namespace's commit sequence.
    ///
    /// # Errors
    /// Socket errors; a malformed response as [`IcdbError::Cql`].
    pub fn hello(&mut self) -> Result<HelloInfo, IcdbError> {
        writeln!(self.writer, "hello").map_err(net_err)?;
        self.writer.flush().map_err(net_err)?;
        let head = self.read_line()?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Err(decode_err(rest));
        }
        let (count, _) = parse_ok_head(&head)?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            lines.push(self.read_line()?);
        }
        let malformed = || IcdbError::Cql("malformed hello response".into());
        let num = |l: &String| l.strip_prefix("d ").and_then(|s| s.trim().parse().ok());
        Ok(HelloInfo {
            protocol: lines.first().and_then(num).ok_or_else(malformed)?,
            role: lines
                .get(1)
                .and_then(|l| l.strip_prefix("s "))
                .ok_or_else(malformed)?
                .to_string(),
            commit_seq: lines.get(2).and_then(num).ok_or_else(malformed)?,
        })
    }

    /// Blocks until the server-side session namespace's commit sequence
    /// reaches `seq` (the `wait_seq` wire command) and returns the
    /// sequence observed. On a follower this waits for replication to
    /// catch up — the read-your-writes barrier.
    ///
    /// # Errors
    /// [`IcdbError::Cql`] on timeout; socket errors as usual.
    pub fn wait_seq(&mut self, seq: u64, timeout: Duration) -> Result<u64, IcdbError> {
        writeln!(
            self.writer,
            "wait_seq {seq} {}",
            u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX)
        )
        .map_err(net_err)?;
        self.writer.flush().map_err(net_err)?;
        let head = self.read_line()?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Err(decode_err(rest));
        }
        let (count, _) = parse_ok_head(&head)?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            lines.push(self.read_line()?);
        }
        lines
            .first()
            .and_then(|l| l.strip_prefix("d ").and_then(|s| s.trim().parse().ok()))
            .ok_or_else(|| IcdbError::Cql("malformed wait_seq response".into()))
    }

    /// Re-binds the server-side session to an existing namespace (`attach`
    /// wire command). After a server restart, a client that remembered its
    /// greeting's `ns<N>` can reconnect and attach to continue exactly
    /// where the crash left it — ownership of the namespace transfers to
    /// this connection.
    ///
    /// # Errors
    /// [`IcdbError::Cql`] when the namespace does not exist; socket errors
    /// as usual.
    pub fn attach(&mut self, ns: icdb_core::NsId) -> Result<(), IcdbError> {
        writeln!(self.writer, "attach ns{}", ns.raw()).map_err(net_err)?;
        self.writer.flush().map_err(net_err)?;
        let head = self.read_line()?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Err(decode_err(rest));
        }
        let (count, _) = parse_ok_head(&head)?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            lines.push(self.read_line()?);
        }
        // The response's `d <seq>` line reports the namespace's commit
        // sequence — the reference point for ambiguous-commit detection.
        if let Some(seq) = lines
            .iter()
            .find_map(|l| l.strip_prefix("d ").and_then(|s| s.trim().parse().ok()))
        {
            self.last_commit_seq = seq;
        }
        self.session_ns = Some(ns);
        Ok(())
    }

    /// The server's full Prometheus text exposition over the CQL wire
    /// (`metrics text:?s`) — byte-identical to the body the
    /// `--metrics-addr` HTTP endpoint serves, so a client can consume the
    /// observability surface without a second socket.
    ///
    /// # Errors
    /// As [`IcdbClient::execute`].
    pub fn metrics_text(&mut self) -> Result<String, IcdbError> {
        let mut args = [CqlArg::OutStr(None)];
        self.execute("command:metrics; text:?s", &mut args)?;
        match args {
            [CqlArg::OutStr(Some(text))] => Ok(text),
            _ => Err(IcdbError::Cql("malformed metrics response".into())),
        }
    }

    /// Sends `quit` and closes the connection (the server then drops the
    /// session namespace).
    ///
    /// # Errors
    /// Socket errors.
    pub fn quit(mut self) -> Result<(), IcdbError> {
        writeln!(self.writer, "quit").map_err(net_err)?;
        self.writer.flush().map_err(net_err)
    }

    fn read_line(&mut self) -> Result<String, IcdbError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(net_err)?;
        if n == 0 {
            return Err(IcdbError::Cql("icdbd closed the connection".into()));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }
}

fn net_err(e: io::Error) -> IcdbError {
    IcdbError::Cql(format!("icdbd i/o error: {e}"))
}

/// Parses an `OK <n>[ commit:<seq>]` response header.
fn parse_ok_head(head: &str) -> Result<(usize, Option<u64>), IcdbError> {
    let malformed = || IcdbError::Cql(format!("malformed icdbd response `{head}`"));
    let rest = head.strip_prefix("OK ").ok_or_else(malformed)?;
    let mut words = rest.split_whitespace();
    let count = words
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or_else(malformed)?;
    let mut commit = None;
    for word in words {
        if let Some(seq) = word.strip_prefix("commit:").and_then(|s| s.parse().ok()) {
            commit = Some(seq);
        }
    }
    Ok((count, commit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let nasty = "a\tb\nc\\d\re\u{1f}f";
        assert_eq!(unescape(&escape(nasty)).unwrap(), nasty);
        assert!(!escape(nasty).contains('\n'));
        assert!(!escape(nasty).contains('\t'));
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn list_encoding_round_trips() {
        let items = vec!["plain".to_string(), "with\ttab".to_string(), "".to_string()];
        assert_eq!(decode_list(&encode_list(&items)).unwrap(), items);
        assert_eq!(decode_list("").unwrap(), Vec::<String>::new());
        // The empty list and the one-empty-string list are distinct.
        let one_empty = vec!["".to_string()];
        assert_eq!(decode_list(&encode_list(&one_empty)).unwrap(), one_empty);
        assert_ne!(encode_list(&one_empty), encode_list(&[]));
    }

    #[test]
    fn input_fields_round_trip() {
        for arg in [
            CqlArg::InStr("multi\nline".into()),
            CqlArg::InInt(-7),
            CqlArg::InReal(2.5),
            CqlArg::InStrList(vec!["A".into(), "B".into()]),
        ] {
            let field = encode_input(&arg).unwrap();
            assert_eq!(decode_input(&field).unwrap(), arg);
        }
    }

    #[test]
    fn err_codes_round_trip_and_map_to_variants() {
        for code in [
            ErrCode::Capacity,
            ErrCode::Parse,
            ErrCode::Cql,
            ErrCode::Readonly,
            ErrCode::NotPrimary,
        ] {
            assert_eq!(ErrCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrCode::from_wire("mystery"), None);
        assert!(matches!(
            decode_err("readonly commits refused while degraded"),
            IcdbError::ReadOnly(m) if m.contains("degraded")
        ));
        assert!(matches!(
            decode_err("capacity server at connection capacity (4)"),
            IcdbError::Unsupported(m) if m.contains("capacity (4)")
        ));
        assert!(matches!(
            decode_err("parse bad escape `\\q`"),
            IcdbError::Parse(m) if m.contains("bad escape")
        ));
        assert!(matches!(
            decode_err("cql icdb: not found: instance `x`"),
            IcdbError::Cql(m) if m.contains("instance `x`")
        ));
        assert!(matches!(
            decode_err("not_primary icdb: not-primary: send mutations to the primary"),
            IcdbError::NotPrimary(m) if m.contains("primary")
        ));
        // Unknown codes stay readable for forward compatibility.
        assert!(matches!(
            decode_err("mystery something odd"),
            IcdbError::Cql(m) if m.contains("mystery something odd")
        ));
    }

    #[test]
    fn output_lines_round_trip() {
        let cases: Vec<(CqlArg, CqlArg)> = vec![
            (CqlArg::OutStr(None), CqlArg::OutStr(Some("x\ny".into()))),
            (CqlArg::OutInt(None), CqlArg::OutInt(Some(42))),
            (CqlArg::OutReal(None), CqlArg::OutReal(Some(1.5))),
            (
                CqlArg::OutStrList(None),
                CqlArg::OutStrList(Some(vec!["A".into(), "B".into()])),
            ),
            (
                CqlArg::OutIntList(None),
                CqlArg::OutIntList(Some(vec![1, 2, 3])),
            ),
            (
                CqlArg::OutRealList(None),
                CqlArg::OutRealList(Some(vec![0.5, 2.0])),
            ),
        ];
        for (blank, filled) in cases {
            let line = encode_output(&filled);
            let mut target = blank;
            decode_output(&line, &mut target).unwrap();
            assert_eq!(target, filled);
        }
    }

    #[test]
    fn ok_headers_parse_with_and_without_commit_seq() {
        assert_eq!(parse_ok_head("OK 3").unwrap(), (3, None));
        assert_eq!(parse_ok_head("OK 2 commit:17").unwrap(), (2, Some(17)));
        assert_eq!(parse_ok_head("OK 0 commit:0").unwrap(), (0, Some(0)));
        assert!(parse_ok_head("NOPE").is_err());
        assert!(parse_ok_head("OK x").is_err());
        // Unknown extra words stay forward-compatible.
        assert_eq!(parse_ok_head("OK 1 shard:3").unwrap(), (1, None));
    }

    #[test]
    fn reply_renders_commit_header_only_for_mutations() {
        let plain = Reply::plain(vec!["s a".into()]);
        assert_eq!(plain.render(), "OK 1\ns a\n");
        let committed = Reply {
            lines: vec![],
            commit: Some(4),
            extra: None,
        };
        assert_eq!(committed.render(), "OK 0 commit:4\n");
        // Extra header words slot between the count and the commit ack —
        // where parse_ok_head skips what it does not know.
        let streamy = Reply {
            lines: vec![],
            commit: Some(9),
            extra: Some("seq:7 epoch:3".into()),
        };
        assert_eq!(streamy.render(), "OK 0 seq:7 epoch:3 commit:9\n");
        assert_eq!(
            parse_ok_head("OK 0 seq:7 epoch:3 commit:9").unwrap(),
            (0, Some(9))
        );
    }

    #[test]
    fn hex_payloads_round_trip() {
        let payload: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let encoded = hex_encode(&payload);
        assert_eq!(encoded.len(), payload.len() * 2);
        assert_eq!(hex_decode(&encoded).unwrap(), payload);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy::default();
        let mut last = Duration::ZERO;
        for attempt in 1..12u32 {
            let delay = policy.backoff(attempt);
            // Deterministic for a given (seed, attempt).
            assert_eq!(delay, policy.backoff(attempt));
            assert!(delay <= policy.backoff_max);
            assert!(delay > Duration::ZERO);
            last = last.max(delay);
        }
        // The exponential reaches the cap's neighborhood (jitter keeps it
        // in the upper half of the capped window).
        assert!(last >= policy.backoff_max / 2);
        // A different seed shifts the schedule.
        let other = RetryPolicy {
            jitter_seed: 0xfeed,
            ..RetryPolicy::default()
        };
        assert!((1..12u32).any(|a| other.backoff(a) != policy.backoff(a)));
        // The no-retry policy degenerates to zero delays.
        assert_eq!(RetryPolicy::none().backoff(3), Duration::ZERO);
    }

    #[test]
    fn bounded_line_reader_rejects_oversized_lines() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"short line\n").unwrap();
            s.write_all(&vec![b'x'; 4096]).unwrap();
            s.write_all(b"\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        assert_eq!(
            read_bounded_line(&mut reader, 1024).unwrap(),
            Some("short line".to_string())
        );
        let err = read_bounded_line(&mut reader, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        writer.join().unwrap();
    }

    /// Drives the thread-per-connection fallback end-to-end on every
    /// platform: greeting, a mutating command acked with `commit:<seq>`,
    /// a read that leaves the sequence untouched, clean shutdown.
    #[test]
    fn threaded_fallback_serves_with_commit_seq_acks() {
        let service = Arc::new(IcdbService::new());
        let server = Server::bind("127.0.0.1:0", service, 4).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::clone(&server.shutdown);
        let join = std::thread::spawn(move || server.serve_threaded());

        let mut client = IcdbClient::connect(addr).unwrap();
        assert!(client.session_ns().is_some());
        assert_eq!(client.last_commit_seq(), 0);
        let mut args = vec![CqlArg::OutStr(None)];
        client
            .execute(
                "command:request_component; implementation:ADDER; attribute:(size:4); \
                 generated_component:?s",
                &mut args,
            )
            .unwrap();
        let name = match &args[0] {
            CqlArg::OutStr(Some(name)) => name.clone(),
            other => panic!("expected generated component, got {other:?}"),
        };
        let seq = client.last_commit_seq();
        assert!(seq >= 1, "mutating ack must advance the commit seq");

        let mut read_args = vec![CqlArg::InStr(name), CqlArg::OutStr(None)];
        client
            .execute(
                "command:instance_query; generated_component:%s; delay:?s",
                &mut read_args,
            )
            .unwrap();
        assert!(matches!(&read_args[1], CqlArg::OutStr(Some(d)) if !d.is_empty()));
        assert_eq!(
            client.last_commit_seq(),
            seq,
            "read-only acks must not move the commit seq"
        );

        let _ = client.quit();
        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr); // unblock the accept loop
        join.join().unwrap().unwrap();
    }
}
