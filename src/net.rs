//! `icdbd` — the line-oriented TCP server speaking CQL, and its client.
//!
//! The paper's `ICDB("command:…", &vars)` is a C function call; this
//! module puts the same calls on a socket so many synthesis tools can
//! share one component database. Each connection gets its own
//! [`Session`](icdb_core::Session) (isolated instance namespace over the
//! shared knowledge base). On Linux the server multiplexes all
//! connections over a small epoll worker pool (see
//! [`crate::event_loop`]): the connection cap is pure admission policy,
//! not a thread budget, so thousands of concurrent clients are fine.
//! Elsewhere it falls back to one thread per connection.
//!
//! ## Wire protocol
//!
//! One request per line, one response per request. All text fields are
//! escaped (`\\`, `\n`, `\t`, `\r`, and `\u{1f}` → `\u`), so commands and
//! answers may span "lines" logically while staying line-framed on the
//! wire.
//!
//! **Request** — the escaped CQL command, then one tab-separated typed
//! field per `%` input slot, in slot order:
//!
//! ```text
//! command:request_component; component_name:counter; attribute:(size:5); generated_component:?s
//! command:instance_query; generated_component:%s; delay:?s<TAB>s:counter$1
//! quit
//! ```
//!
//! Input fields are `s:<text>`, `d:<int>`, `r:<real>` or `l:<items>`
//! (string list, items separated by `\u{1f}`). The bare word `quit` (or
//! `exit`) closes the connection.
//!
//! **Response** — `ERR <code> <message>`, or `OK <n>` followed by `n`
//! lines, one per `?` output slot in slot order, each `<type> <value>`
//! with the same typing (`S`/`D`/`R` for `?s[]`/`?d[]`/`?r[]` lists):
//!
//! ```text
//! OK 1
//! s counter$1
//! ```
//!
//! The `ERR` code is machine-readable ([`ErrCode`]): `capacity` (the
//! connection cap refused the client), `parse` (the request line itself
//! is malformed — bad escapes, bad slot syntax, field/slot mismatch) or
//! `cql` (the command executed and failed). [`IcdbClient`] maps them onto
//! distinct [`IcdbError`] variants — [`IcdbError::Unsupported`],
//! [`IcdbError::Parse`] and [`IcdbError::Cql`] respectively — so callers
//! can tell refusal from query failure.
//!
//! [`IcdbClient::execute`] mirrors [`crate::Icdb::execute`] exactly — the
//! same command strings and the same `&mut [CqlArg]` calling convention —
//! so code written against the embedded API ports to the socket by
//! swapping the receiver.

use icdb_core::{IcdbError, IcdbService};
use icdb_cql::{scan_slots, CqlArg, SlotSpec, SlotType};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(not(target_os = "linux"))]
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default TCP port of `icdbd`.
pub const DEFAULT_PORT: u16 = 7433;

/// Default connection cap.
pub const DEFAULT_MAX_CONNECTIONS: usize = 32;

/// Default size of the epoll worker pool (`icdbd --workers`). Each
/// worker owns a private epoll instance and its share of the
/// connections; commands execute synchronously on the owning worker.
pub const DEFAULT_WORKERS: usize = 4;

/// Separator for list items inside one wire field.
const LIST_SEP: char = '\u{1f}';

/// Machine-readable reason code carried as the first word of an `ERR`
/// response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The connection cap refused the client before a session opened.
    Capacity,
    /// The request line is malformed (escaping, slot syntax, or
    /// field/slot arity) — the command never reached the executor.
    Parse,
    /// The command executed and failed (unknown command, missing
    /// instance, generation error, …).
    Cql,
}

impl ErrCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Capacity => "capacity",
            ErrCode::Parse => "parse",
            ErrCode::Cql => "cql",
        }
    }

    /// Parses the wire spelling back.
    pub fn from_wire(word: &str) -> Option<ErrCode> {
        match word {
            "capacity" => Some(ErrCode::Capacity),
            "parse" => Some(ErrCode::Parse),
            "cql" => Some(ErrCode::Cql),
            _ => None,
        }
    }
}

/// Decodes the remainder of an `ERR ` line into the matching error
/// variant: `capacity` → [`IcdbError::Unsupported`], `parse` →
/// [`IcdbError::Parse`], `cql` (and unknown codes, for forward
/// compatibility) → [`IcdbError::Cql`].
fn decode_err(rest: &str) -> IcdbError {
    let (word, body) = rest.split_once(' ').unwrap_or((rest, ""));
    let message = unescape(body).unwrap_or_else(|_| body.to_string());
    match ErrCode::from_wire(word) {
        Some(ErrCode::Capacity) => IcdbError::Unsupported(message),
        Some(ErrCode::Parse) => IcdbError::Parse(message),
        Some(ErrCode::Cql) => IcdbError::Cql(message),
        None => IcdbError::Cql(unescape(rest).unwrap_or_else(|_| rest.to_string())),
    }
}

// ------------------------------------------------------------- escaping

/// Escapes a text field for the line protocol.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            LIST_SEP => out.push_str("\\u"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
///
/// # Errors
/// Fails on dangling or unknown escape sequences.
pub fn unescape(text: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => out.push(LIST_SEP),
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

// Every item is followed by a separator (not just joined), so the empty
// list ("") and a one-element list of the empty string ("\u{1f}") stay
// distinct on the wire.
fn encode_list(items: &[String]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&escape(item));
        out.push(LIST_SEP);
    }
    out
}

fn decode_list(field: &str) -> Result<Vec<String>, String> {
    if field.is_empty() {
        return Ok(Vec::new());
    }
    let body = field
        .strip_suffix(LIST_SEP)
        .ok_or_else(|| "unterminated list field".to_string())?;
    body.split(LIST_SEP).map(unescape).collect()
}

// ------------------------------------------------------ arg (de)coding

/// Encodes one input argument as a typed wire field.
fn encode_input(arg: &CqlArg) -> Option<String> {
    match arg {
        CqlArg::InStr(s) => Some(format!("s:{}", escape(s))),
        CqlArg::InInt(v) => Some(format!("d:{v}")),
        CqlArg::InReal(v) => Some(format!("r:{v}")),
        CqlArg::InStrList(v) => Some(format!("l:{}", encode_list(v))),
        _ => None,
    }
}

/// Decodes one typed wire field into an input argument.
fn decode_input(field: &str) -> Result<CqlArg, String> {
    let (ty, body) = field
        .split_once(':')
        .ok_or_else(|| format!("input field `{field}` lacks a type prefix"))?;
    match ty {
        "s" => Ok(CqlArg::InStr(unescape(body)?)),
        "d" => Ok(CqlArg::InInt(
            body.parse().map_err(|_| format!("bad integer `{body}`"))?,
        )),
        "r" => Ok(CqlArg::InReal(
            body.parse().map_err(|_| format!("bad real `{body}`"))?,
        )),
        "l" => Ok(CqlArg::InStrList(decode_list(body)?)),
        other => Err(format!("unknown input type `{other}`")),
    }
}

/// Fresh (None) output argument for a scanned slot.
fn blank_output(spec: SlotSpec) -> CqlArg {
    match (spec.ty, spec.array) {
        (SlotType::Int, false) => CqlArg::OutInt(None),
        (SlotType::Real, false) => CqlArg::OutReal(None),
        (SlotType::Int, true) => CqlArg::OutIntList(None),
        (SlotType::Real, true) => CqlArg::OutRealList(None),
        (_, true) => CqlArg::OutStrList(None),
        _ => CqlArg::OutStr(None),
    }
}

/// Encodes one filled output argument as a response line.
fn encode_output(arg: &CqlArg) -> String {
    match arg {
        CqlArg::OutStr(Some(s)) => format!("s {}", escape(s)),
        CqlArg::OutInt(Some(v)) => format!("d {v}"),
        CqlArg::OutReal(Some(v)) => format!("r {v}"),
        CqlArg::OutStrList(Some(v)) => format!("S {}", encode_list(v)),
        CqlArg::OutIntList(Some(v)) => format!(
            "D {}",
            v.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(&LIST_SEP.to_string())
        ),
        CqlArg::OutRealList(Some(v)) => format!(
            "R {}",
            v.iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(&LIST_SEP.to_string())
        ),
        _ => "-".to_string(),
    }
}

/// Writes a decoded response line back into the client's output argument.
fn decode_output(line: &str, arg: &mut CqlArg) -> Result<(), String> {
    if line == "-" {
        return Ok(()); // slot left unfilled by the executor
    }
    let (ty, body) = line
        .split_once(' ')
        .ok_or_else(|| format!("malformed output line `{line}`"))?;
    match (ty, arg) {
        ("s", CqlArg::OutStr(slot)) => *slot = Some(unescape(body)?),
        ("d", CqlArg::OutInt(slot)) => {
            *slot = Some(body.parse().map_err(|_| format!("bad integer `{body}`"))?)
        }
        ("r", CqlArg::OutReal(slot)) => {
            *slot = Some(body.parse().map_err(|_| format!("bad real `{body}`"))?)
        }
        ("S", CqlArg::OutStrList(slot)) => *slot = Some(decode_list(body)?),
        ("D", CqlArg::OutIntList(slot)) => {
            let mut out = Vec::new();
            for item in body.split(LIST_SEP).filter(|s| !s.is_empty()) {
                out.push(item.parse().map_err(|_| format!("bad integer `{item}`"))?);
            }
            *slot = Some(out);
        }
        ("R", CqlArg::OutRealList(slot)) => {
            let mut out = Vec::new();
            for item in body.split(LIST_SEP).filter(|s| !s.is_empty()) {
                out.push(item.parse().map_err(|_| format!("bad real `{item}`"))?);
            }
            *slot = Some(out);
        }
        (ty, arg) => return Err(format!("output type `{ty}` does not fit argument {arg:?}")),
    }
    Ok(())
}

// --------------------------------------------------------------- server

/// The `icdbd` TCP server: an [`IcdbService`] behind a line-oriented CQL
/// protocol, one session per connection, bounded by an admission cap.
/// Linux builds serve all connections from an epoll worker pool; other
/// platforms fall back to one thread per connection.
pub struct Server {
    listener: TcpListener,
    service: Arc<IcdbService>,
    max_connections: usize,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// Address the server is accepting on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to stop and waits for it.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop();
        }
    }
}

impl Server {
    /// Binds a server for `service` on `addr` (use port 0 for an
    /// ephemeral port).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<IcdbService>,
        max_connections: usize,
    ) -> io::Result<Server> {
        Server::bind_with(addr, service, max_connections, DEFAULT_WORKERS)
    }

    /// [`Server::bind`] with an explicit epoll worker-pool size (ignored
    /// by the thread-per-connection fallback on non-Linux platforms).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<IcdbService>,
        max_connections: usize,
        workers: usize,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            max_connections: max_connections.max(1),
            workers: workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Address the server is bound to.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the server on the current thread until shut down: the accept
    /// loop admits connections and the epoll workers serve them (Linux;
    /// elsewhere each admitted connection gets a thread). Returns only
    /// after every worker exited and dropped its sessions, so a caller
    /// that checkpoints afterwards sees all namespace cleanup journaled.
    ///
    /// # Errors
    /// Propagates accept errors.
    pub fn serve(self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            crate::event_loop::serve(
                self.listener,
                self.service,
                self.max_connections,
                self.workers,
                self.shutdown,
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.serve_threaded()
        }
    }

    /// The portable thread-per-connection fallback.
    #[cfg(not(target_os = "linux"))]
    fn serve_threaded(self) -> io::Result<()> {
        let _ = self.workers;
        let active = Arc::new(AtomicUsize::new(0));
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // A transient accept failure (ECONNABORTED, fd exhaustion under
            // load) must not take down every live session: log, back off a
            // beat, keep accepting.
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    eprintln!("icdbd: accept failed (continuing): {e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            // Connection cap: refuse politely instead of queueing forever.
            if active.fetch_add(1, Ordering::SeqCst) >= self.max_connections {
                active.fetch_sub(1, Ordering::SeqCst);
                let mut w = BufWriter::new(&stream);
                let _ = writeln!(
                    w,
                    "ERR {} server at connection capacity ({})",
                    ErrCode::Capacity.as_str(),
                    self.max_connections
                );
                let _ = w.flush();
                continue;
            }
            let service = Arc::clone(&self.service);
            let active = Arc::clone(&active);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &service);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        Ok(())
    }

    /// Moves the accept loop to a background thread and returns a handle
    /// carrying the bound address and a shutdown switch.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let join = std::thread::spawn(move || self.serve());
        Ok(ServerHandle {
            addr,
            shutdown,
            join: Some(join),
        })
    }
}

/// Serves one connection: opens a session, answers one command per line
/// until `quit` or EOF, then drops the session (deleting its namespace).
///
/// Besides CQL command lines, the protocol accepts `attach ns<N>` (or
/// `attach <N>`): re-bind the connection's session to an existing
/// namespace — the crash-recovery path, since a durable server preserves
/// namespace ids across restarts (see [`icdb_core::Session::attach`]).
/// The response is `OK 1` + `s ns<N>` on success.
#[cfg(not(target_os = "linux"))]
fn handle_connection(stream: TcpStream, service: &Arc<IcdbService>) -> io::Result<()> {
    let mut session = service.open_session();
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "OK icdbd ready (session ns{})", session.ns().raw())?;
    writer.flush()?;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let outcome = match line.strip_prefix("attach ") {
            Some(target) => attach_session(&mut session, target),
            None => answer(&session, line),
        };
        match outcome {
            Ok(out_lines) => {
                writeln!(writer, "OK {}", out_lines.len())?;
                for l in out_lines {
                    writeln!(writer, "{l}")?;
                }
            }
            Err((code, message)) => writeln!(writer, "ERR {} {}", code.as_str(), escape(&message))?,
        }
        writer.flush()?;
    }
    Ok(())
}

/// Handles the `attach` wire command: parses `ns<N>` / `<N>` and re-binds
/// the session (ownership of the namespace transfers to this connection).
pub(crate) fn attach_session(
    session: &mut icdb_core::Session,
    target: &str,
) -> Result<Vec<String>, (ErrCode, String)> {
    let target = target.trim();
    let raw: u64 = target
        .strip_prefix("ns")
        .unwrap_or(target)
        .parse()
        .map_err(|_| {
            (
                ErrCode::Parse,
                format!("attach needs a namespace id like `ns3`, got `{target}`"),
            )
        })?;
    let ns = icdb_core::NsId::from_raw(raw);
    session
        .attach(ns)
        .map_err(|e| (ErrCode::Cql, e.to_string()))?;
    Ok(vec![format!("s ns{raw}")])
}

/// Decodes one request line, executes it in the session, and encodes the
/// output lines. Errors carry their wire reason code: decoding problems
/// are `parse`, execution failures are `cql`.
pub(crate) fn answer(
    session: &icdb_core::Session,
    line: &str,
) -> Result<Vec<String>, (ErrCode, String)> {
    let parse = |m: String| (ErrCode::Parse, m);
    let mut fields = line.split('\t');
    let command = unescape(fields.next().unwrap_or_default()).map_err(parse)?;
    let slots = scan_slots(&command).map_err(|e| parse(e.to_string()))?;
    let mut args = Vec::with_capacity(slots.len());
    for spec in slots {
        if spec.input {
            let field = fields
                .next()
                .ok_or_else(|| parse("too few input fields for the command's % slots".into()))?;
            args.push(decode_input(field).map_err(parse)?);
        } else {
            args.push(blank_output(spec));
        }
    }
    if fields.next().is_some() {
        return Err(parse("more input fields than % slots".into()));
    }
    session
        .execute(&command, &mut args)
        .map_err(|e| (ErrCode::Cql, e.to_string()))?;
    Ok(args
        .iter()
        .filter(|a| {
            matches!(
                a,
                CqlArg::OutStr(_)
                    | CqlArg::OutInt(_)
                    | CqlArg::OutReal(_)
                    | CqlArg::OutStrList(_)
                    | CqlArg::OutIntList(_)
                    | CqlArg::OutRealList(_)
            )
        })
        .map(encode_output)
        .collect())
}

// --------------------------------------------------------------- client

/// A blocking `icdbd` client whose [`IcdbClient::execute`] mirrors the
/// embedded [`crate::Icdb::execute`] calling convention.
#[derive(Debug)]
pub struct IcdbClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session_ns: Option<icdb_core::NsId>,
}

impl IcdbClient {
    /// Connects and consumes the server greeting.
    ///
    /// # Errors
    /// Socket errors, or the server refusing the connection (cap reached).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<IcdbClient, IcdbError> {
        let stream = TcpStream::connect(addr).map_err(net_err)?;
        let mut client = IcdbClient {
            reader: BufReader::new(stream.try_clone().map_err(net_err)?),
            writer: BufWriter::new(stream),
            session_ns: None,
        };
        let greeting = client.read_line()?;
        if let Some(rest) = greeting.strip_prefix("ERR ") {
            // A `capacity` refusal surfaces as `IcdbError::Unsupported` so
            // callers can tell "try again later" from a real failure.
            return Err(match decode_err(rest) {
                IcdbError::Unsupported(m) => {
                    IcdbError::Unsupported(format!("icdbd refused the connection: {m}"))
                }
                other => other,
            });
        }
        // Greeting form: `OK icdbd ready (session ns<N>)` — remember the
        // namespace so the client can re-attach after a server restart.
        client.session_ns = greeting
            .rsplit_once("ns")
            .and_then(|(_, raw)| raw.trim_end_matches(')').parse().ok())
            .map(icdb_core::NsId::from_raw);
        Ok(client)
    }

    /// The server-side namespace of this connection's session, parsed from
    /// the greeting (and updated by [`IcdbClient::attach`]). This is the id
    /// to attach to when reconnecting to a durable server after a crash.
    pub fn session_ns(&self) -> Option<icdb_core::NsId> {
        self.session_ns
    }

    /// Executes one CQL command remotely: `%` inputs are read from `args`,
    /// `?` outputs are written back into them — exactly like
    /// [`crate::Icdb::execute`], but over the socket.
    ///
    /// # Errors
    /// Server-side errors arrive typed by their wire reason code
    /// ([`ErrCode`]): command failures as [`IcdbError::Cql`], malformed
    /// request lines as [`IcdbError::Parse`]. Socket errors are wrapped as
    /// [`IcdbError::Cql`].
    pub fn execute(&mut self, command: &str, args: &mut [CqlArg]) -> Result<(), IcdbError> {
        let mut line = escape(command);
        for arg in args.iter() {
            if let Some(field) = encode_input(arg) {
                line.push('\t');
                line.push_str(&field);
            }
        }
        writeln!(self.writer, "{line}").map_err(net_err)?;
        self.writer.flush().map_err(net_err)?;

        let head = self.read_line()?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Err(decode_err(rest));
        }
        let count: usize = head
            .strip_prefix("OK ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| IcdbError::Cql(format!("malformed icdbd response `{head}`")))?;
        let mut outputs = Vec::with_capacity(count);
        for _ in 0..count {
            outputs.push(self.read_line()?);
        }
        let mut out_iter = outputs.iter();
        for arg in args.iter_mut() {
            let is_output = matches!(
                arg,
                CqlArg::OutStr(_)
                    | CqlArg::OutInt(_)
                    | CqlArg::OutReal(_)
                    | CqlArg::OutStrList(_)
                    | CqlArg::OutIntList(_)
                    | CqlArg::OutRealList(_)
            );
            if is_output {
                let line = out_iter.next().ok_or_else(|| {
                    IcdbError::Cql("icdbd returned fewer outputs than ? slots".into())
                })?;
                decode_output(line, arg).map_err(IcdbError::Cql)?;
            }
        }
        Ok(())
    }

    /// Re-binds the server-side session to an existing namespace (`attach`
    /// wire command). After a server restart, a client that remembered its
    /// greeting's `ns<N>` can reconnect and attach to continue exactly
    /// where the crash left it — ownership of the namespace transfers to
    /// this connection.
    ///
    /// # Errors
    /// [`IcdbError::Cql`] when the namespace does not exist; socket errors
    /// as usual.
    pub fn attach(&mut self, ns: icdb_core::NsId) -> Result<(), IcdbError> {
        writeln!(self.writer, "attach ns{}", ns.raw()).map_err(net_err)?;
        self.writer.flush().map_err(net_err)?;
        let head = self.read_line()?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Err(decode_err(rest));
        }
        let count: usize = head
            .strip_prefix("OK ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| IcdbError::Cql(format!("malformed icdbd response `{head}`")))?;
        for _ in 0..count {
            self.read_line()?;
        }
        self.session_ns = Some(ns);
        Ok(())
    }

    /// Sends `quit` and closes the connection (the server then drops the
    /// session namespace).
    ///
    /// # Errors
    /// Socket errors.
    pub fn quit(mut self) -> Result<(), IcdbError> {
        writeln!(self.writer, "quit").map_err(net_err)?;
        self.writer.flush().map_err(net_err)
    }

    fn read_line(&mut self) -> Result<String, IcdbError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(net_err)?;
        if n == 0 {
            return Err(IcdbError::Cql("icdbd closed the connection".into()));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }
}

fn net_err(e: io::Error) -> IcdbError {
    IcdbError::Cql(format!("icdbd i/o error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let nasty = "a\tb\nc\\d\re\u{1f}f";
        assert_eq!(unescape(&escape(nasty)).unwrap(), nasty);
        assert!(!escape(nasty).contains('\n'));
        assert!(!escape(nasty).contains('\t'));
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn list_encoding_round_trips() {
        let items = vec!["plain".to_string(), "with\ttab".to_string(), "".to_string()];
        assert_eq!(decode_list(&encode_list(&items)).unwrap(), items);
        assert_eq!(decode_list("").unwrap(), Vec::<String>::new());
        // The empty list and the one-empty-string list are distinct.
        let one_empty = vec!["".to_string()];
        assert_eq!(decode_list(&encode_list(&one_empty)).unwrap(), one_empty);
        assert_ne!(encode_list(&one_empty), encode_list(&[]));
    }

    #[test]
    fn input_fields_round_trip() {
        for arg in [
            CqlArg::InStr("multi\nline".into()),
            CqlArg::InInt(-7),
            CqlArg::InReal(2.5),
            CqlArg::InStrList(vec!["A".into(), "B".into()]),
        ] {
            let field = encode_input(&arg).unwrap();
            assert_eq!(decode_input(&field).unwrap(), arg);
        }
    }

    #[test]
    fn err_codes_round_trip_and_map_to_variants() {
        for code in [ErrCode::Capacity, ErrCode::Parse, ErrCode::Cql] {
            assert_eq!(ErrCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrCode::from_wire("mystery"), None);
        assert!(matches!(
            decode_err("capacity server at connection capacity (4)"),
            IcdbError::Unsupported(m) if m.contains("capacity (4)")
        ));
        assert!(matches!(
            decode_err("parse bad escape `\\q`"),
            IcdbError::Parse(m) if m.contains("bad escape")
        ));
        assert!(matches!(
            decode_err("cql icdb: not found: instance `x`"),
            IcdbError::Cql(m) if m.contains("instance `x`")
        ));
        // Unknown codes stay readable for forward compatibility.
        assert!(matches!(
            decode_err("mystery something odd"),
            IcdbError::Cql(m) if m.contains("mystery something odd")
        ));
    }

    #[test]
    fn output_lines_round_trip() {
        let cases: Vec<(CqlArg, CqlArg)> = vec![
            (CqlArg::OutStr(None), CqlArg::OutStr(Some("x\ny".into()))),
            (CqlArg::OutInt(None), CqlArg::OutInt(Some(42))),
            (CqlArg::OutReal(None), CqlArg::OutReal(Some(1.5))),
            (
                CqlArg::OutStrList(None),
                CqlArg::OutStrList(Some(vec!["A".into(), "B".into()])),
            ),
            (
                CqlArg::OutIntList(None),
                CqlArg::OutIntList(Some(vec![1, 2, 3])),
            ),
            (
                CqlArg::OutRealList(None),
                CqlArg::OutRealList(Some(vec![0.5, 2.0])),
            ),
        ];
        for (blank, filled) in cases {
            let line = encode_output(&filled);
            let mut target = blank;
            decode_output(&line, &mut target).unwrap();
            assert_eq!(target, filled);
        }
    }
}
