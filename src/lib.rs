//! # icdb — An Intelligent Component Database for Behavioral Synthesis
//!
//! A full Rust reproduction of Chen & Gajski's ICDB (UC Irvine TR 89-39 /
//! DAC 1990): a *component server* that generates micro-architecture
//! components (counters, adders, ALUs, registers, …) on demand from
//! parameterized **IIF** descriptions, and answers synthesis tools' queries
//! about delay, area, shape functions, port connections and layouts through
//! the **CQL** command interface.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role (paper section) |
//! |---|---|---|
//! | [`core`] | `icdb-core` | the component server itself (§2, §4, App. B) |
//! | [`iif`] | `icdb-iif` | the IIF language: parser + macro expander (§3.1, App. A) |
//! | [`cql`] | `icdb-cql` | Component Query Language commands/slots (§3.2, App. B) |
//! | [`logic`] | `icdb-logic` | logic optimizer + technology mapper (MILO, §4.3.1) |
//! | [`cells`] | `icdb-cells` | characterized basic-cell library (§4.4) |
//! | [`sizing`] | `icdb-sizing` | transistor sizing (TILOS-style, §4.3) |
//! | [`estimate`] | `icdb-estimate` | delay + area/shape estimators (§4.4) |
//! | [`explore`] | `icdb-explore` | design-space exploration: Pareto fronts + constrained selection (§1, §3.2.2 `strategy:`) |
//! | [`layout`] | `icdb-layout` | strip layout, CIF, floorplanner (LES, §4.3.2) |
//! | [`sim`] | `icdb-sim` | gate-level verification simulator (§4.3) |
//! | [`vhdl`] | `icdb-vhdl` | structural VHDL emission/parsing (§2.2) |
//! | [`store`] | `icdb-store` | embedded relational + file stores (INGRES/UNIX, §2.3) |
//! | [`genus`] | `icdb-genus` | GENUS component/function taxonomy (App. B §2–3) |
//! | [`obs`] | `icdb-obs` | metrics registry, Prometheus exposition, structured logging |
//! | [`net`] | (this crate) | the `icdbd` TCP server + client over CQL |
//!
//! For concurrent multi-client use, wrap the server in an
//! [`IcdbService`] (sessions get isolated instance namespaces over one
//! shared knowledge base and generation cache), or run the `icdbd`
//! binary and connect with [`net::IcdbClient`].
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use icdb::{ComponentRequest, Icdb};
//!
//! let mut icdb = Icdb::new();
//! let counter = icdb.request_component(
//!     &ComponentRequest::by_component("counter")
//!         .attribute("size", "5")
//!         .attribute("up_or_down", "3")
//!         .clock_width(30.0),
//! )?;
//! println!("{}", icdb.delay_string(&counter)?);   // CW …, WD Q[4] …, SD DWUP …
//! println!("{}", icdb.shape_string(&counter)?);   // Alternative=1 width=… height=…
//! # Ok(())
//! # }
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub use icdb_core::{
    Applied, CacheStats, ComponentImpl, ComponentInstance, ComponentRequest, Constraints,
    DesignManager, DesignPoint, ExplorationReport, ExploreSpec, GenCache, GenericComponentLibrary,
    Icdb, IcdbError, IcdbService, LayerStats, MutationEvent, NsId, Objective, ParamSpec,
    PersistStats, ReplSnapshot, RequestKey, Session, Source, TargetLevel,
};

pub mod net;
pub mod repl;

#[cfg(target_os = "linux")]
mod event_loop;

/// The component server (re-export of `icdb-core`).
pub mod core {
    pub use icdb_core::*;
}

/// The IIF language (re-export of `icdb-iif`).
pub mod iif {
    pub use icdb_iif::*;
}

/// The Component Query Language (re-export of `icdb-cql`).
pub mod cql {
    pub use icdb_cql::*;
}

/// Logic optimization and technology mapping (re-export of `icdb-logic`).
pub mod logic {
    pub use icdb_logic::*;
}

/// The characterized cell library (re-export of `icdb-cells`).
pub mod cells {
    pub use icdb_cells::*;
}

/// Transistor sizing (re-export of `icdb-sizing`).
pub mod sizing {
    pub use icdb_sizing::*;
}

/// Delay and area/shape estimation (re-export of `icdb-estimate`).
pub mod estimate {
    pub use icdb_estimate::*;
}

/// Design-space exploration and Pareto selection (re-export of
/// `icdb-explore`; the sweep driver itself is [`crate::Icdb::explore`]).
pub mod explore {
    pub use icdb_explore::*;
}

/// Strip layout, CIF and floorplanning (re-export of `icdb-layout`).
pub mod layout {
    pub use icdb_layout::*;
}

/// Gate-level simulation (re-export of `icdb-sim`).
pub mod sim {
    pub use icdb_sim::*;
}

/// Structural VHDL (re-export of `icdb-vhdl`).
pub mod vhdl {
    pub use icdb_vhdl::*;
}

/// Storage layer (re-export of `icdb-store`).
pub mod store {
    pub use icdb_store::*;
}

/// GENUS taxonomy (re-export of `icdb-genus`).
pub mod genus {
    pub use icdb_genus::*;
}

/// Observability: metrics registry, Prometheus exposition, structured
/// logging (re-export of `icdb-obs`).
pub mod obs {
    pub use icdb_obs::*;
}
