//! WAL-shipping replication: the follower runtime.
//!
//! A follower is a full `icdbd` node that mirrors a primary instead of
//! accepting writes. [`bootstrap`] materializes the primary's current
//! durable image — its latest snapshot generation plus the WAL tail,
//! fetched over the `repl_snapshot` wire command — into an empty local
//! data directory, recovers from it through the *standard* crash-recovery
//! path, and then starts a tail thread that long-polls `repl_stream` for
//! fsynced [`MutationEvent`]s and replays each through the same
//! `Icdb::apply` choke point recovery uses. Followers therefore converge
//! on byte-identical state by construction: there is exactly one apply
//! path, shared by the primary's commits, crash replay, and replication.
//!
//! Guarantees and their boundaries:
//!
//! - **Only durable, acked events ship.** The primary's feed is populated
//!   after the group-commit fsync succeeds, so a follower can never
//!   observe an event the primary might still lose.
//! - **Replication is asynchronous.** The primary does not wait for
//!   followers; an acked commit that has not shipped yet dies with the
//!   primary. Failover procedures that must not lose acks wait for the
//!   follower's `lag_events` to reach 0 first (`persist lag_events:?d`).
//! - **Sequences are process-local.** A primary restart resets WAL
//!   sequence numbering, so every replication reply carries the
//!   primary's boot `epoch`; on a mismatch the tail loop stalls and
//!   reports that a re-bootstrap is required rather than misapplying a
//!   foreign cursor.
//! - **Promotion re-arms writes.** `persist promote:1` (on the follower)
//!   clears the replica role and checkpoints onto a fresh generation;
//!   the tail loop notices on its next apply and stops itself.

use crate::net::hex_decode;
use icdb_core::{IcdbError, IcdbService, MutationEvent};
use icdb_obs::metrics as obs;
use std::io::{self, BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long one `repl_stream` long-poll asks the primary to wait before
/// answering "caught up" (the loop simply polls again).
const STREAM_WAIT_MS: u64 = 400;

/// Events fetched per `repl_stream` round.
const STREAM_MAX_EVENTS: usize = 512;

/// Socket read timeout on the upstream connection — generous against a
/// slow primary, finite against a dead one.
const UPSTREAM_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Backoff between reconnect attempts after the upstream drops.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(200);

/// A running replication follower: the recovered, read-only service plus
/// the tail thread keeping it converged with the upstream primary.
///
/// Serve [`Follower::service`] exactly like a primary's service — the
/// entire read-only surface works locally; mutations answer
/// `ERR not_primary`. Dropping the handle (or calling [`Follower::stop`])
/// stops the tail thread; the service itself stays usable (frozen at the
/// last applied event) and can be promoted.
pub struct Follower {
    service: Arc<IcdbService>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    stall: Arc<Mutex<Option<String>>>,
}

impl Follower {
    /// The replicating service — share it with a [`crate::net::Server`].
    pub fn service(&self) -> &Arc<IcdbService> {
        &self.service
    }

    /// Why replication stalled permanently, if it has (epoch change,
    /// pruned history, a replay failure). `None` while healthy — or
    /// after a promotion, which is a clean self-stop, not a stall.
    pub fn stall_reason(&self) -> Option<String> {
        self.stall.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stops the tail thread and waits for it to exit. Idempotent; the
    /// service remains usable (and promotable) afterwards.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bootstraps a follower of `upstream` into the empty directory
/// `data_dir` and starts tailing. See the module docs for the protocol;
/// `sync` and `group_commit_window` configure the follower's *own*
/// journal exactly like [`IcdbService::open_with_options`].
///
/// # Errors
/// A non-empty data directory (a stale image must not be silently mixed
/// with a fresh bootstrap — wipe it explicitly), connection or protocol
/// failures against the upstream, and any local journaling error.
pub fn bootstrap(
    upstream: &str,
    data_dir: impl AsRef<Path>,
    sync: bool,
    group_commit_window: Duration,
) -> Result<Follower, IcdbError> {
    let data_dir = data_dir.as_ref();
    refuse_stale_image(data_dir)?;

    let mut conn = ReplConn::connect(upstream)
        .map_err(|e| IcdbError::Store(format!("replication bootstrap: connect {upstream}: {e}")))?;
    let (head, lines) = conn
        .request("repl_snapshot")
        .map_err(|e| IcdbError::Store(format!("replication bootstrap: {e}")))?;
    let generation = head_field(&head, "gen:")
        .ok_or_else(|| IcdbError::Store(format!("repl_snapshot reply lacks gen: `{head}`")))?;
    let durable_seq = head_field(&head, "seq:")
        .ok_or_else(|| IcdbError::Store(format!("repl_snapshot reply lacks seq: `{head}`")))?;
    let epoch = head_field(&head, "epoch:")
        .ok_or_else(|| IcdbError::Store(format!("repl_snapshot reply lacks epoch: `{head}`")))?;
    let mut payloads = lines.iter().map(|line| {
        line.strip_prefix("s ")
            .ok_or_else(|| format!("unexpected repl_snapshot line `{line}`"))
            .and_then(hex_decode)
    });
    let snapshot = payloads
        .next()
        .unwrap_or_else(|| Err("repl_snapshot reply has no snapshot line".into()))
        .map_err(|e| IcdbError::Store(format!("replication bootstrap: {e}")))?;
    let wal_tail: Vec<Vec<u8>> = payloads
        .collect::<Result<_, _>>()
        .map_err(|e| IcdbError::Store(format!("replication bootstrap: {e}")))?;

    materialize(data_dir, generation, &snapshot, &wal_tail)
        .map_err(|e| IcdbError::Store(format!("replication bootstrap: materialize image: {e}")))?;

    // The standard recovery path turns the materialized generation into
    // live state — snapshot restore plus WAL replay, identical to a
    // primary rebooting after a crash.
    let service = Arc::new(IcdbService::open_with_options(
        data_dir,
        sync,
        group_commit_window,
    )?);
    service.set_replica(upstream, durable_seq)?;
    obs::REPL_APPLIED_SEQ.set(durable_seq);
    obs::REPL_LAG_EVENTS.set(0);

    let stop = Arc::new(AtomicBool::new(false));
    let stall = Arc::new(Mutex::new(None));
    let join = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let stall = Arc::clone(&stall);
        let upstream = upstream.to_string();
        std::thread::Builder::new()
            .name("icdb-repl-tail".into())
            .spawn(move || {
                tail_loop(&service, &upstream, durable_seq, epoch, &stop, &stall);
            })
            .map_err(|e| IcdbError::Store(format!("spawn replication tail thread: {e}")))?
    };
    Ok(Follower {
        service,
        stop,
        join: Some(join),
        stall,
    })
}

/// Refuses to bootstrap over an existing durable image: a data dir that
/// already holds `snapshot-*` / `wal-*` files belongs to some other node
/// history, and mixing it with a fresh upstream image would corrupt both.
fn refuse_stale_image(data_dir: &Path) -> Result<(), IcdbError> {
    let entries = match std::fs::read_dir(data_dir) {
        Ok(entries) => entries,
        // A missing directory is fine — DataDir::open creates it.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => {
            return Err(IcdbError::Store(format!(
                "replication bootstrap: read {}: {e}",
                data_dir.display()
            )));
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("snapshot-") || name.starts_with("wal-") {
            return Err(IcdbError::Store(format!(
                "replication bootstrap: {} already holds a durable image ({name}); \
                 refusing to mix histories — point the follower at an empty directory",
                data_dir.display()
            )));
        }
    }
    Ok(())
}

/// Writes the fetched image to disk as generation `generation`: the
/// snapshot payload re-framed by the store layer (skipped when the
/// primary had not snapshotted yet), then every WAL-tail record appended
/// through a [`icdb_store::wal::WalWriter`] and fsynced.
fn materialize(
    data_dir: &Path,
    generation: u64,
    snapshot: &[u8],
    wal_tail: &[Vec<u8>],
) -> io::Result<()> {
    let dir = icdb_store::wal::DataDir::open(data_dir)?;
    if !snapshot.is_empty() {
        dir.write_snapshot(generation, snapshot)?;
    }
    let (mut writer, _) = dir.open_wal(generation, false)?;
    for record in wal_tail {
        writer.append(record)?;
    }
    writer.sync()
}

/// The tail thread: long-poll `repl_stream`, decode, replay, repeat.
/// Transport errors reconnect with backoff; protocol-fatal conditions
/// (epoch change, pruned history, a local replay failure) record a stall
/// reason and exit; a promotion exits cleanly.
fn tail_loop(
    service: &Arc<IcdbService>,
    upstream: &str,
    mut cursor: u64,
    epoch: u64,
    stop: &AtomicBool,
    stall: &Mutex<Option<String>>,
) {
    let fatal = |reason: String| {
        *stall.lock().unwrap_or_else(|e| e.into_inner()) = Some(reason);
    };
    let mut conn: Option<ReplConn> = None;
    while !stop.load(Ordering::SeqCst) {
        let live = match &mut conn {
            Some(live) => live,
            None => match ReplConn::connect(upstream) {
                Ok(fresh) => conn.insert(fresh),
                Err(_) => {
                    obs::REPL_RECONNECTS.inc();
                    std::thread::sleep(RECONNECT_BACKOFF);
                    continue;
                }
            },
        };
        let request =
            format!("repl_stream from:{cursor} max:{STREAM_MAX_EVENTS} wait_ms:{STREAM_WAIT_MS}");
        let (head, lines) = match live.request(&request) {
            Ok(reply) => reply,
            Err(ReplError::Io(_)) => {
                // The upstream dropped (crash, restart, network): dial
                // again until it is back or we are stopped.
                conn = None;
                obs::REPL_RECONNECTS.inc();
                std::thread::sleep(RECONNECT_BACKOFF);
                continue;
            }
            Err(ReplError::Server(message)) => {
                // `repl_stream` refusals are not transient: pruned
                // history needs a re-bootstrap, anything else operator
                // attention. Keep serving reads, stop replicating.
                fatal(format!("upstream refused repl_stream: {message}"));
                return;
            }
        };
        let Some(durable) = head_field(&head, "seq:") else {
            fatal(format!("malformed repl_stream reply head `{head}`"));
            return;
        };
        match head_field(&head, "epoch:") {
            Some(now) if now == epoch => {}
            other => {
                fatal(format!(
                    "upstream epoch changed ({epoch} -> {other:?}): the primary restarted and \
                     sequence numbers reset; this follower must be re-bootstrapped"
                ));
                return;
            }
        }
        let mut events = Vec::with_capacity(lines.len());
        let mut last_seq = cursor;
        for line in &lines {
            let Some((seq, event)) = decode_event_line(line) else {
                fatal(format!("malformed repl_stream event line `{line}`"));
                return;
            };
            last_seq = seq;
            events.push(event);
        }
        // An empty batch with an advanced durable sequence is a gap the
        // primary never made durable (a cleared fault): skip over it.
        let applied_to = if events.is_empty() {
            durable.max(cursor)
        } else {
            last_seq
        };
        let lag = durable.saturating_sub(applied_to);
        match service.apply_replicated(&events, applied_to, lag) {
            Ok(()) => {
                cursor = applied_to;
                obs::REPL_APPLIED_SEQ.set(applied_to);
                obs::REPL_LAG_EVENTS.set(lag);
            }
            // Promoted out from under the loop: a clean self-stop.
            Err(IcdbError::Unsupported(_)) => return,
            Err(e) => {
                fatal(format!("replaying event {last_seq} failed: {e}"));
                return;
            }
        }
    }
}

/// Parses a `repl_stream` event line: `e <seq> <hex payload>`.
fn decode_event_line(line: &str) -> Option<(u64, MutationEvent)> {
    let rest = line.strip_prefix("e ")?;
    let (seq, hex) = rest.split_once(' ')?;
    let seq = seq.parse().ok()?;
    let payload = hex_decode(hex).ok()?;
    let event = MutationEvent::decode(&payload).ok()?;
    Some((seq, event))
}

/// Extracts a `key:<u64>` word from a reply header.
fn head_field(head: &str, key: &str) -> Option<u64> {
    head.split_whitespace()
        .find_map(|word| word.strip_prefix(key).and_then(|v| v.parse().ok()))
}

/// How one replication request failed.
enum ReplError {
    /// The transport died — reconnect and retry.
    Io(io::Error),
    /// The server answered `ERR` — not retriable.
    Server(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "i/o: {e}"),
            ReplError::Server(m) => write!(f, "upstream: {m}"),
        }
    }
}

/// A raw line-protocol connection for the replication commands. The
/// regular [`crate::net::IcdbClient`] speaks CQL request/response; the
/// replication commands have their own header grammar (`gen:`/`seq:`/
/// `epoch:` words, hex payload lines), so the follower drives the socket
/// directly.
struct ReplConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ReplConn {
    /// Dials, applies timeouts, and consumes the greeting (the server
    /// opens a throwaway session namespace for this connection, like any
    /// client).
    fn connect(upstream: &str) -> Result<ReplConn, ReplError> {
        let addrs: Vec<_> = upstream.to_socket_addrs().map_err(ReplError::Io)?.collect();
        let mut last: Option<io::Error> = None;
        let mut stream = None;
        for addr in &addrs {
            match TcpStream::connect_timeout(addr, Duration::from_secs(5)) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let Some(stream) = stream else {
            return Err(ReplError::Io(
                last.unwrap_or_else(|| io::ErrorKind::AddrNotAvailable.into()),
            ));
        };
        stream
            .set_read_timeout(Some(UPSTREAM_READ_TIMEOUT))
            .map_err(ReplError::Io)?;
        let mut conn = ReplConn {
            reader: BufReader::new(stream.try_clone().map_err(ReplError::Io)?),
            writer: BufWriter::new(stream),
        };
        let greeting = conn.read_line()?;
        if let Some(rest) = greeting.strip_prefix("ERR ") {
            return Err(ReplError::Server(rest.to_string()));
        }
        Ok(conn)
    }

    /// One request/response round: returns the `OK …` header and its
    /// payload lines.
    fn request(&mut self, line: &str) -> Result<(String, Vec<String>), ReplError> {
        writeln!(self.writer, "{line}").map_err(ReplError::Io)?;
        self.writer.flush().map_err(ReplError::Io)?;
        let head = self.read_line()?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Err(ReplError::Server(rest.to_string()));
        }
        let count: usize = head
            .strip_prefix("OK ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                ReplError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed reply head `{head}`"),
                ))
            })?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            lines.push(self.read_line()?);
        }
        Ok((head, lines))
    }

    fn read_line(&mut self) -> Result<String, ReplError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(ReplError::Io)?;
        if n == 0 {
            return Err(ReplError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }
}
