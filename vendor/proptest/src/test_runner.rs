//! Deterministic test runner pieces: config, case errors, and the RNG.

use std::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator: splitmix64 seeding + xorshift64* stepping.
///
/// Seeded from the property's name so every test run (and CI) explores the
/// same sequence of cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name via FNV-1a + splitmix64.
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // One splitmix64 round decorrelates similar names.
        let mut z = hash.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range handed to the RNG");
        self.next_u64() % bound
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[low, high)`.
    pub fn f64_in(&mut self, low: f64, high: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}
