//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    low: usize,
    high_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            low: exact,
            high_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty size range {range:?}");
        SizeRange {
            low: range.start,
            high_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        assert!(range.start() <= range.end(), "empty size range {range:?}");
        SizeRange {
            low: *range.start(),
            high_inclusive: *range.end(),
        }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<Element: Strategy>(
    element: Element,
    size: impl Into<SizeRange>,
) -> VecStrategy<Element> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<Element> {
    element: Element,
    size: SizeRange,
}

impl<Element: Strategy> Strategy for VecStrategy<Element> {
    type Value = Vec<Element::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<Element::Value> {
        let span = (self.size.high_inclusive - self.size.low + 1) as u64;
        let len = self.size.low + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
