//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values (the shim drops proptest's shrinking half).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map_fn`.
    fn prop_map<Output, MapFn>(self, map_fn: MapFn) -> Map<Self, MapFn>
    where
        Self: Sized,
        MapFn: Fn(Self::Value) -> Output,
    {
        Map {
            inner: self,
            map_fn,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `branch_fn`
    /// produces the recursive case from a strategy for subtrees. At each of
    /// the `depth` levels the generator picks leaves with 1-in-3 probability,
    /// so trees mix depths instead of always bottoming out.
    ///
    /// The `_desired_size` and `_expected_branch_size` tuning knobs of real
    /// proptest are accepted and ignored.
    fn prop_recursive<Recursive, BranchFn>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch_fn: BranchFn,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        Recursive: Strategy<Value = Self::Value> + 'static,
        BranchFn: Fn(BoxedStrategy<Self::Value>) -> Recursive,
    {
        let leaf = self.boxed();
        let mut tree = leaf.clone();
        for _ in 0..depth {
            let branch = branch_fn(tree).boxed();
            tree = LeafOrBranch {
                leaf: leaf.clone(),
                branch,
            }
            .boxed();
        }
        tree
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<Value>(Rc<dyn Strategy<Value = Value>>);

impl<Value> Clone for BoxedStrategy<Value> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<Value> Strategy for BoxedStrategy<Value> {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<Inner, MapFn> {
    inner: Inner,
    map_fn: MapFn,
}

impl<Inner, Output, MapFn> Strategy for Map<Inner, MapFn>
where
    Inner: Strategy,
    MapFn: Fn(Inner::Value) -> Output,
{
    type Value = Output;

    fn generate(&self, rng: &mut TestRng) -> Output {
        (self.map_fn)(self.inner.generate(rng))
    }
}

/// Recursion step used by [`Strategy::prop_recursive`].
struct LeafOrBranch<Value> {
    leaf: BoxedStrategy<Value>,
    branch: BoxedStrategy<Value>,
}

impl<Value> Strategy for LeafOrBranch<Value> {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        if rng.below(3) == 0 {
            self.leaf.generate(rng)
        } else {
            self.branch.generate(rng)
        }
    }
}

/// Equal-weight union of strategies (see [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<Value> {
    options: Vec<BoxedStrategy<Value>>,
}

impl<Value> Union<Value> {
    /// A union over `options`; the list must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<Value>>) -> Union<Value> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<Value> Strategy for Union<Value> {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! integer_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy {:?}", self);
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

integer_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {:?}", self);
        rng.f64_in(self.start, self.end)
    }
}

impl<A, B> Strategy for (A, B)
where
    A: Strategy,
    B: Strategy,
{
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> (A::Value, B::Value) {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A, B, C> Strategy for (A, B, C)
where
    A: Strategy,
    B: Strategy,
    C: Strategy,
{
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> (A::Value, B::Value, C::Value) {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A, B, C, D> Strategy for (A, B, C, D)
where
    A: Strategy,
    B: Strategy,
    C: Strategy,
    D: Strategy,
{
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> (A::Value, B::Value, C::Value, D::Value) {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical strategy for `bool`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_range_ints {
    ($($ty:ty => $any:ident),+) => {$(
        /// Canonical full-range strategy for the integer type.
        #[derive(Clone, Copy, Debug)]
        pub struct $any;

        impl Strategy for $any {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }

        impl Arbitrary for $ty {
            type Strategy = $any;

            fn arbitrary() -> $any {
                $any
            }
        }
    )+};
}

arbitrary_full_range_ints!(
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize
);
