//! The glob-import surface, mirroring `proptest::prelude`.

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
