//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments without access to crates.io, so the
//! real `proptest` cannot be fetched. This shim implements the subset of the
//! proptest API that `tests/properties.rs` uses — [`Strategy`](strategy::Strategy) with
//! `prop_map`/`prop_recursive`/`boxed`, range and tuple strategies,
//! [`collection::vec`], [`prop_oneof!`], the [`proptest!`] test macro with
//! `#![proptest_config(…)]`, and the `prop_assert*` macros — on top of a
//! deterministic splitmix/xorshift generator seeded from the test name.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! * **deterministic seeds** — every run explores the same cases, so CI is
//!   reproducible;
//! * **no persistence** (`proptest-regressions/` files are never written).
//!
//! When the real `proptest` becomes available, delete `vendor/proptest` and
//! point the dev-dependency at crates.io; the call sites compile unchanged.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary};

/// Equal-weight choice between strategies producing the same value type.
///
/// Mirrors `proptest::prop_oneof!`; weights (`n => strategy`) are not
/// supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fails the current test case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. An optional leading `#![proptest_config(expr)]` sets the config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs
                    );
                }
            }
        }
    )*};
}
