//! Derive macros for the offline `serde` stand-in.
//!
//! Each derive parses just enough of the item — skipping attributes and
//! visibility to find the `struct`/`enum` keyword and the type name — and
//! emits an empty marker-trait impl. Generic types are rejected with a clear
//! error; none of the workspace types that derive these are generic.

#![deny(rustdoc::broken_intra_doc_links)]

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim's marker `serde::Serialize` for a non-generic type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize", "::serde::Serialize")
}

/// Derives the shim's marker `serde::Deserialize` for a non-generic type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize", "::serde::Deserialize<'de>")
}

fn marker_impl(input: TokenStream, derive_name: &str, trait_path: &str) -> TokenStream {
    let name = match type_name(input) {
        Ok(name) => name,
        Err(msg) => {
            return format!("compile_error!(\"derive({derive_name}): {msg}\");")
                .parse()
                .expect("static error template parses");
        }
    };
    let imp = if trait_path.contains("'de") {
        format!("impl<'de> {trait_path} for {name} {{}}")
    } else {
        format!("impl {trait_path} for {name} {{}}")
    };
    imp.parse().expect("generated impl parses")
}

/// Extracts the type name from a `struct`/`enum`/`union` item, rejecting
/// generic items (the shim emits non-generic impls only).
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut trees = input.into_iter().peekable();
    while let Some(tree) = trees.next() {
        match tree {
            // `#[attr]` — a '#' punct followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                trees.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    let name = match trees.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => return Err(format!("expected a type name, found {other:?}")),
                    };
                    if matches!(trees.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        return Err(format!(
                            "the offline serde shim cannot derive for generic type `{name}`"
                        ));
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)` (the group is consumed on its own turn).
            }
            _ => {}
        }
    }
    Err("no struct/enum/union found in derive input".into())
}
