//! Derive macros for the offline `serde` stand-in.
//!
//! Unlike the earlier marker-only revision, these derives now generate
//! *working* field-wise `Serialize`/`Deserialize` impls over the shim's
//! little-endian binary format:
//!
//! * structs (named, tuple, unit) encode their fields in declaration order;
//! * enums encode a `u32` variant index (declaration order) followed by the
//!   variant's fields;
//! * generic types are rejected with a clear error — none of the workspace
//!   types that derive these are generic.
//!
//! The parser is deliberately small: it walks the raw [`TokenStream`]
//! (no `syn`/`quote`, which are unavailable offline), skipping attributes
//! and visibility, tracking `<`/`>` depth so commas inside generic field
//! types (`HashMap<String, Table>`) do not split fields.

#![deny(rustdoc::broken_intra_doc_links)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives the shim's binary-format `serde::Serialize` for a non-generic
/// struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the shim's binary-format `serde::Deserialize` for a non-generic
/// struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The shapes a struct body or enum variant can take.
enum Fields {
    Unit,
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Tuple fields, by count.
    Tuple(usize),
}

enum Item {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let derive_name = match mode {
        Mode::Serialize => "Serialize",
        Mode::Deserialize => "Deserialize",
    };
    match parse_item(input) {
        Ok((name, item)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &item),
                Mode::Deserialize => gen_deserialize(&name, &item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!(\"derive({derive_name}): {msg}\");")
            .parse()
            .expect("static error template parses"),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<(String, Item), String> {
    let mut trees = input.into_iter().peekable();
    while let Some(tree) = trees.next() {
        match tree {
            // `#[attr]` — a '#' punct followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                trees.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "union" {
                    return Err("unions cannot derive serde impls".into());
                }
                if word != "struct" && word != "enum" {
                    // `pub`, `pub(crate)` (the group is consumed on its own
                    // turn).
                    continue;
                }
                let name = match trees.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected a type name, found {other:?}")),
                };
                if matches!(trees.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    return Err(format!(
                        "the offline serde shim cannot derive for generic type `{name}`"
                    ));
                }
                let rest: Vec<TokenTree> = trees.collect();
                let item = if word == "struct" {
                    Item::Struct(parse_struct_body(&rest)?)
                } else {
                    Item::Enum(parse_enum_body(&rest)?)
                };
                return Ok((name, item));
            }
            _ => {}
        }
    }
    Err("no struct/enum found in derive input".into())
}

fn parse_struct_body(rest: &[TokenTree]) -> Result<Fields, String> {
    for tree in rest {
        match tree {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return Ok(Fields::Named(parse_named_fields(g.stream())?));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Ok(Fields::Tuple(count_tuple_fields(g.stream())));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => return Ok(Fields::Unit),
            TokenTree::Ident(id) if id.to_string() == "where" => {
                return Err("`where` clauses are not supported by the offline shim".into());
            }
            _ => {}
        }
    }
    Err("struct body not found".into())
}

fn parse_enum_body(rest: &[TokenTree]) -> Result<Vec<(String, Fields)>, String> {
    let body = rest
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or("enum body not found")?;
    let mut variants = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments) before the variant name.
        while matches!(trees.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            trees.next();
            trees.next();
        }
        let Some(tree) = trees.next() else {
            break;
        };
        let name = match tree {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found `{other}`")),
        };
        let fields = match trees.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                trees.next();
                Fields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                trees.next();
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next
        // top-level comma, then the comma itself.
        let mut angle = 0i32;
        for t in trees.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

/// Splits a brace-group body into top-level field chunks (commas inside
/// `<…>` belong to types; commas inside nested groups are invisible here)
/// and extracts each field's name: the identifier after attributes and
/// visibility, before the `:`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut chunk: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    let mut finish = |chunk: &mut Vec<TokenTree>| -> Result<(), String> {
        if chunk.is_empty() {
            return Ok(());
        }
        names.push(field_name(chunk)?);
        chunk.clear();
        Ok(())
    };
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                finish(&mut chunk)?;
                continue;
            }
            _ => {}
        }
        chunk.push(tree);
    }
    finish(&mut chunk)?;
    Ok(names)
}

/// The field name inside one chunk: skip `#[…]` attributes and `pub`
/// (optionally followed by a restriction group), then take the identifier.
fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(chunk.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => return Ok(id.to_string()),
            other => return Err(format!("unexpected token `{other}` before field name")),
        }
    }
    Err("field name not found".into())
}

/// Number of fields in a tuple-struct/-variant body (top-level commas,
/// angle-depth aware, tolerating a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut chunk_nonempty = false;
    let mut angle = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if chunk_nonempty {
                    count += 1;
                }
                chunk_nonempty = false;
                continue;
            }
            _ => {}
        }
        chunk_nonempty = true;
    }
    if chunk_nonempty {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(name: &str, item: &Item) -> String {
    let mut body = String::new();
    match item {
        Item::Struct(fields) => match fields {
            Fields::Unit => {}
            Fields::Named(names) => {
                for f in names {
                    let _ = writeln!(body, "::serde::Serialize::serialize(&self.{f}, out);");
                }
            }
            Fields::Tuple(n) => {
                for i in 0..*n {
                    let _ = writeln!(body, "::serde::Serialize::serialize(&self.{i}, out);");
                }
            }
        },
        Item::Enum(variants) => {
            body.push_str("match self {\n");
            for (tag, (vname, fields)) in variants.iter().enumerate() {
                match fields {
                    Fields::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vname} => {{ ::serde::write_u32(out, {tag}u32); }}"
                        );
                    }
                    Fields::Named(names) => {
                        let binders = names.join(", ");
                        let _ = writeln!(
                            body,
                            "{name}::{vname} {{ {binders} }} => {{ \
                             ::serde::write_u32(out, {tag}u32);"
                        );
                        for f in names {
                            let _ = writeln!(body, "::serde::Serialize::serialize({f}, out);");
                        }
                        body.push_str("}\n");
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vname}({}) => {{ ::serde::write_u32(out, {tag}u32);",
                            binders.join(", ")
                        );
                        for b in &binders {
                            let _ = writeln!(body, "::serde::Serialize::serialize({b}, out);");
                        }
                        body.push_str("}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, out: &mut ::std::vec::Vec<u8>) {{\n\
         let _ = &out;\n{body}}}\n}}"
    )
}

fn gen_deserialize(name: &str, item: &Item) -> String {
    let construct_fields = |fields: &Fields, path: &str| -> String {
        match fields {
            Fields::Unit => path.to_string(),
            Fields::Named(names) => {
                let mut s = format!("{path} {{\n");
                for f in names {
                    let _ = writeln!(s, "{f}: ::serde::Deserialize::deserialize(input)?,");
                }
                s.push('}');
                s
            }
            Fields::Tuple(n) => {
                let mut s = format!("{path}(");
                for i in 0..*n {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str("::serde::Deserialize::deserialize(input)?");
                }
                s.push(')');
                s
            }
        }
    };
    let body = match item {
        Item::Struct(fields) => format!("Ok({})", construct_fields(fields, name)),
        Item::Enum(variants) => {
            let mut s = String::from("match ::serde::read_u32(input)? {\n");
            for (tag, (vname, fields)) in variants.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "{tag}u32 => Ok({}),",
                    construct_fields(fields, &format!("{name}::{vname}"))
                );
            }
            let _ = writeln!(s, "tag => Err(::serde::bad_variant(\"{name}\", tag)),");
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize(input: &mut &'de [u8]) \
         -> ::std::result::Result<Self, ::serde::DecodeError> {{\n\
         let _ = &input;\n{body}\n}}\n}}"
    )
}
