//! Offline stand-in for the `serde` crate, now with a real (if small)
//! serialization engine.
//!
//! This workspace builds in environments without access to crates.io, so the
//! real `serde` cannot be fetched. Earlier revisions of this shim provided
//! marker traits only; the event-sourced durability layer of `icdb-store` /
//! `icdb-core` needs actual bytes on disk, so the shim now implements a
//! compact little-endian binary format:
//!
//! * integers are fixed-width little-endian (`usize` travels as `u64`);
//! * `f64` is its IEEE-754 bit pattern (`to_bits`), so values round-trip
//!   bit-exactly — including negative zero and non-finite values;
//! * `bool` and `Option` discriminants are one byte;
//! * strings and sequences are a `u64` length followed by their elements;
//! * enum variants are a `u32` index in declaration order.
//!
//! `#[derive(Serialize, Deserialize)]` (re-exported from `serde_derive`)
//! generates field-wise impls for non-generic structs and enums. The derive
//! and trait *names* still mirror the real serde, so swapping the vendored
//! shim for crates.io serde + a binary format crate remains a
//! manifest-plus-adapter change, not an API hunt.

#![deny(rustdoc::broken_intra_doc_links)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

/// Serialization into the shim's binary format.
///
/// Implemented via `#[derive(Serialize)]` or by hand; writing never fails
/// (the sink is an in-memory buffer).
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize(&self, out: &mut Vec<u8>);
}

/// Deserialization from the shim's binary format.
///
/// The `'de` lifetime ties the input slice to the call, mirroring real
/// serde's borrowed-deserialization signature (all current impls produce
/// owned values).
pub trait Deserialize<'de>: Sized {
    /// Decodes one value from the front of `input`, advancing it.
    ///
    /// # Errors
    /// Fails on truncated input, invalid UTF-8, or unknown enum variants.
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError>;
}

/// Decoding failure: truncated input, malformed UTF-8, length overflow or
/// an unknown enum variant tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// A decode error with a formatted message.
pub fn decode_error(message: impl Into<String>) -> DecodeError {
    DecodeError {
        message: message.into(),
    }
}

/// The error reported by derived enum impls on an unknown variant tag.
pub fn bad_variant(type_name: &str, tag: u32) -> DecodeError {
    decode_error(format!("unknown variant tag {tag} for `{type_name}`"))
}

/// Encodes a value to a fresh byte buffer.
pub fn to_bytes<T: Serialize>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    out
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed (trailing garbage is a framing bug, not data).
///
/// # Errors
/// Propagates decode failures and rejects trailing bytes.
pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, DecodeError> {
    let mut input = bytes;
    let value = T::deserialize(&mut input)?;
    if !input.is_empty() {
        return Err(decode_error(format!(
            "{} trailing bytes after value",
            input.len()
        )));
    }
    Ok(value)
}

// ------------------------------------------------------------ primitives

fn take<'de>(input: &mut &'de [u8], n: usize) -> Result<&'de [u8], DecodeError> {
    if input.len() < n {
        return Err(decode_error(format!(
            "input truncated: wanted {n} bytes, have {}",
            input.len()
        )));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Writes a `u32` (used by derived enum impls for variant tags).
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` (used by derived enum impls for variant tags).
///
/// # Errors
/// Fails on truncated input.
pub fn read_u32(input: &mut &[u8]) -> Result<u32, DecodeError> {
    let bytes = take(input, 4)?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn write_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&(len as u64).to_le_bytes());
}

fn read_len(input: &mut &[u8]) -> Result<usize, DecodeError> {
    let bytes = take(input, 8)?;
    let len = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
    // Every element of every collection in this format occupies at least
    // one byte, so a length beyond the remaining input is corrupt — reject
    // it before attempting a huge allocation.
    if len > input.len() as u64 {
        return Err(decode_error(format!(
            "length {len} exceeds remaining input ({} bytes)",
            input.len()
        )));
    }
    Ok(len as usize)
}

macro_rules! int_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized")))
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        let v = u64::deserialize(input)?;
        usize::try_from(v).map_err(|_| decode_error(format!("usize value {v} overflows")))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        match u8::deserialize(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(decode_error(format!("invalid bool byte {other}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.to_bits().serialize(out);
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::deserialize(input)?))
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.to_bits().serialize(out);
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        Ok(f32::from_bits(u32::deserialize(input)?))
    }
}

// --------------------------------------------------------------- strings

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn read_str<'de>(input: &mut &'de [u8]) -> Result<&'de str, DecodeError> {
    let len = read_len(input)?;
    let bytes = take(input, len)?;
    std::str::from_utf8(bytes).map_err(|e| decode_error(format!("invalid UTF-8: {e}")))
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_str(out, self);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        read_str(input).map(str::to_string)
    }
}

impl Serialize for Arc<str> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_str(out, self);
    }
}

impl<'de> Deserialize<'de> for Arc<str> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        read_str(input).map(Arc::from)
    }
}

// ---------------------------------------------------------- compositions

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        match u8::deserialize(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(input)?)),
            other => Err(decode_error(format!("invalid Option byte {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for item in self {
            item.serialize(out);
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        let len = read_len(input)?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::deserialize(input)?);
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.0.serialize(out);
        self.1.serialize(out);
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        Ok((A::deserialize(input)?, B::deserialize(input)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.0.serialize(out);
        self.1.serialize(out);
        self.2.serialize(out);
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        Ok((
            A::deserialize(input)?,
            B::deserialize(input)?,
            C::deserialize(input)?,
        ))
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: BuildHasher + Default,
{
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        let len = read_len(input)?;
        let mut out = HashMap::with_capacity_and_hasher(len.min(1024), S::default());
        for _ in 0..len {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        let len = read_len(input)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for item in self {
            item.serialize(out);
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        let len = read_len(input)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(input)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for item in self {
            item.serialize(out);
        }
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, DecodeError> {
        let len = read_len(input)?;
        let mut out = HashSet::with_capacity_and_hasher(len.min(1024), S::default());
        for _ in 0..len {
            out.insert(T::deserialize(input)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(value: T)
    where
        T: Serialize + for<'de> Deserialize<'de> + PartialEq + fmt::Debug,
    {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("round trip");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(1.5f64);
        round_trip(f64::NEG_INFINITY);
        // NaN round-trips bit-exactly even though NaN != NaN.
        let bytes = to_bytes(&f64::NAN);
        let back: f64 = from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
        round_trip(-0.0f64);
        round_trip("héllo\n\t'quoted'".to_string());
        round_trip(Arc::<str>::from("shared"));
    }

    #[test]
    fn compositions_round_trip() {
        round_trip(Option::<String>::None);
        round_trip(Some(7i64));
        round_trip(vec![1u32, 2, 3]);
        round_trip(("k".to_string(), 2i64));
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1.5f64);
        round_trip(m);
        let mut b = BTreeMap::new();
        b.insert("x".to_string(), vec![1u8]);
        round_trip(b);
        round_trip(BTreeSet::from(["p".to_string(), "q".to_string()]));
    }

    #[test]
    fn truncated_and_trailing_inputs_fail() {
        let bytes = to_bytes(&"hello".to_string());
        assert!(from_bytes::<String>(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(from_bytes::<String>(&padded).is_err());
        // A corrupt huge length is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes::<Vec<u8>>(&huge).is_err());
    }
}
