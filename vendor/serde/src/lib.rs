//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in environments without access to crates.io, so the
//! real `serde` cannot be fetched. The storage layer (`icdb-store`) only needs
//! the *API surface* of serde — `#[derive(Serialize, Deserialize)]` on its
//! types so downstream consumers can rely on the traits being implemented —
//! not an actual wire format yet. This shim provides exactly that surface:
//!
//! * marker traits [`Serialize`] and [`Deserialize`];
//! * derive macros of the same names (re-exported from `serde_derive`) that
//!   emit empty trait impls.
//!
//! When the real `serde` becomes available, delete `vendor/serde` and
//! `vendor/serde_derive`, point the manifests at crates.io, and everything
//! keeps compiling — the trait/derive names and shapes match.

#![deny(rustdoc::broken_intra_doc_links)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// Implemented via `#[derive(Serialize)]` from this shim; carries no
/// serialization machinery until the real dependency is swapped in.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
///
/// Implemented via `#[derive(Deserialize)]` from this shim; carries no
/// deserialization machinery until the real dependency is swapped in.
pub trait Deserialize<'de> {}
