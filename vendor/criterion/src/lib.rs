//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This workspace builds in environments without access to crates.io, so the
//! real `criterion` cannot be fetched. This shim keeps every `benches/*.rs`
//! target compiling and *runnable* (`cargo bench` works) with the same
//! source: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`] and [`black_box`].
//!
//! Measurement is intentionally simple — per benchmark it runs one warm-up
//! iteration, then `sample_size` timed iterations, and reports the minimum,
//! median and maximum wall-clock time. There is no statistical analysis, no
//! HTML report, and no `target/criterion` history. Swap in the real crate
//! (delete `vendor/criterion`, point the dev-dependency at crates.io) for
//! publication-quality numbers; the bench sources compile unchanged.

#![deny(rustdoc::broken_intra_doc_links)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Substring filter from the command line; `None` runs everything.
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration. The shim honors the positional
    /// benchmark-name filter (`cargo bench fig5` runs only benchmarks whose
    /// id contains `fig5`, matching real criterion) and ignores dash flags.
    /// An argument following a `--flag` without `=` is treated as that
    /// flag's value, not a filter, so criterion invocations like
    /// `-- --save-baseline main` don't silently filter everything out.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg.starts_with('-') {
                if arg.starts_with("--") && !arg.contains('=') {
                    args.next(); // consume the flag's value
                }
            } else {
                self.filter = Some(arg);
                break;
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let filter = self.filter.clone();
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            filter,
            announced: false,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.filter.as_ref().is_none_or(|f| id.contains(f.as_str())) {
            run_benchmark(&id, 10, f);
        }
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    filter: Option<String>,
    announced: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark in the group (skipped when it misses the filter).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        if self.filter.as_ref().is_none_or(|f| id.contains(f.as_str())) {
            if !self.announced {
                println!("\n== {}", self.name);
                self.announced = true;
            }
            run_benchmark(&id, self.sample_size, f);
        }
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Times closures inside a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Times `routine`, once per requested sample, preventing the result
    /// from being optimized away.
    pub fn iter<Output, Routine>(&mut self, mut routine: Routine)
    where
        Routine: FnMut() -> Output,
    {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.requested {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        requested: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples recorded)");
        return;
    }
    bencher.samples.sort_unstable();
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
