//! The Appendix-B request walk-through: generate the fastest 4-bit
//! adder/subtractor through the CQL interface, query its connection
//! information (`## function ADD … ** ADDSUBCTL 0`), and *verify* it with
//! the gate-level simulator — the role the paper assigns to its VHDL
//! simulator ("to verify the correctness of functionality", §4.3).
//!
//! Run with: `cargo run --example adder_subtractor`

use icdb::cql::CqlArg;
use icdb::sim::{Logic, Simulator};
use icdb::Icdb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut icdb = Icdb::new();

    // Appendix B §4: "command:request_component; component_name:
    // Adder_Subtractor; size:4; strategy:fastest; component_instance:?s".
    let mut args = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component;
         component_name:Adder_Subtractor;
         size:4;
         strategy:fastest;
         component_instance:?s",
        &mut args,
    )?;
    let CqlArg::OutStr(Some(addsub)) = args.remove(0) else {
        return Err("no instance returned".into());
    };
    println!("generated: {addsub}");

    // Appendix B §5.4: the connection query.
    let mut args = vec![CqlArg::InStr(addsub.clone()), CqlArg::OutStr(None)];
    icdb.execute(
        "command:connect_component; instance:%s; connect:?s",
        &mut args,
    )?;
    let CqlArg::OutStr(Some(connect)) = &args[1] else {
        panic!()
    };
    println!("\n--- connection information ---\n{connect}");

    // Verify on silicon-level structure: simulate ADD and SUB.
    let inst = icdb.instance(&addsub)?;
    let lib = icdb.cells.clone();
    let mut sim = Simulator::new(&inst.netlist, &lib)?;
    println!("--- simulation check (4-bit, ADDSUBCTL: 0=add, 1=sub) ---");
    let cases = [(7u64, 5u64), (12, 9), (3, 8), (15, 15)];
    for (a, b) in cases {
        sim.set_bus("A", 4, a)?;
        sim.set_bus("B", 4, b)?;
        sim.set_by_name("ADDSUBCTL", Logic::Zero)?;
        sim.propagate();
        let sum = sim.bus("O", 4)?;
        assert_eq!(sum, (a + b) & 0xF, "{a}+{b}");
        sim.set_by_name("ADDSUBCTL", Logic::One)?;
        sim.propagate();
        let diff = sim.bus("O", 4)?;
        assert_eq!(diff, a.wrapping_sub(b) & 0xF, "{a}-{b}");
        println!("  {a:2} + {b:2} = {sum:2}    {a:2} - {b:2} = {diff:2} (mod 16)");
    }

    // Timing after `strategy:fastest`: every output delay with drive sizes.
    println!("\n--- delay report ---");
    print!("{}", icdb.delay_string(&addsub)?);
    let sized_up = inst.netlist.gates.iter().filter(|g| g.size > 1.0).count();
    println!(
        "\n{} of {} gates were upsized by the `fastest` strategy",
        sized_up,
        inst.netlist.gates.len()
    );
    Ok(())
}
