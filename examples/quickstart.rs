//! Quickstart: the paper's §3 walk-through as a program.
//!
//! Requests the five-bit up/down counter with enable and asynchronous
//! parallel load (the TTL-74191-style component of Fig. 4), then asks ICDB
//! everything a synthesis tool would ask: the delay report (CW/WD/SD), the
//! shape function, the connection information for the INC function, the
//! VHDL views and a CIF layout.
//!
//! Run with: `cargo run --example quickstart`

use icdb::{ComponentRequest, Icdb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut icdb = Icdb::new();

    // §3.2.2: request a five-bit counter under a 30 ns clock-width
    // constraint. Attributes mirror the paper's parameter list.
    let request = ComponentRequest::by_component("counter")
        .attribute("size", "5")
        .attribute("type", "synchronous")
        .attribute("up_or_down", "updown")
        .attribute("enable", "1")
        .attribute("load", "1")
        .clock_width(30.0);
    let counter_ins = icdb.request_component(&request)?;
    println!("generated component instance: {counter_ins}\n");

    // §3.3: the component instance query for delay and shape function.
    println!("--- delay report (CW / WD / SD) ---");
    print!("{}", icdb.delay_string(&counter_ins)?);

    println!("\n--- shape function ---");
    print!("{}", icdb.shape_string(&counter_ins)?);

    println!("\n--- strip/area table ---");
    print!("{}", icdb.area_string(&counter_ins)?);

    // §4.1: connection information — how to invoke the INC function.
    println!("\n--- connection information ---");
    print!("{}", icdb.connect_string(&counter_ins)?);

    // §3.3: the VHDL head a synthesis tool would embed in its netlist.
    println!("\n--- VHDL head ---");
    print!("{}", icdb.vhdl_head(&counter_ins)?);

    // Layout generation with the paper's port-position assignment.
    let ports = "\
CLK left 1
LOAD left 2
DWUP left 3
ENA left 4
D[0] top 10
D[1] top 20
D[2] top 30
D[3] top 40
D[4] top 50
MINMAX right 1
RCLK right 2
Q[0] bottom 10
Q[1] bottom 20
Q[2] bottom 30
Q[3] bottom 40
Q[4] bottom 50
";
    let cif = icdb.generate_layout(&counter_ins, Some(3), Some(ports))?;
    println!("\n--- CIF (first lines) ---");
    for line in cif.lines().take(8) {
        println!("{line}");
    }
    println!("… ({} CIF statements total)", cif.matches(';').count());

    let inst = icdb.instance(&counter_ins)?;
    println!(
        "\nsummary: {} gates, area ≈ {:.0} µm², CW = {:.1} ns, constraints met: {}",
        inst.netlist.gates.len(),
        inst.area(),
        inst.report.clock_width,
        inst.met
    );
    Ok(())
}
