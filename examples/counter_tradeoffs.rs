//! Design-space exploration over the counter family — the experiment
//! behind Fig. 5 of the paper ("Area/time tradeoff curve of counters").
//!
//! A behavioral synthesis tool that needs an up-counter asks ICDB for every
//! implementation that can execute INC, generates the five variants of the
//! paper with different attributes, and tabulates (delay to Q[size-1],
//! area) so allocation can pick the cheapest component that meets timing.
//!
//! Run with: `cargo run --example counter_tradeoffs`

use icdb::cql::CqlArg;
use icdb::{ComponentRequest, Icdb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut icdb = Icdb::new();

    // First, the §3.2.1 component query: which implementations perform INC?
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:component_query; component:counter; function:(INC); ICDB_components:?s[]",
        &mut args,
    )?;
    let CqlArg::OutStrList(Some(candidates)) = &args[0] else {
        return Err("query returned nothing".into());
    };
    println!("counter implementations performing INC: {candidates:?}\n");

    // The five variants of Fig. 5, all usable as a 5-bit up counter.
    let variants: [(&str, &[(&str, &str)]); 5] = [
        ("ripple", &[("type", "ripple")]),
        (
            "synchronous up",
            &[("type", "synchronous"), ("up_or_down", "up")],
        ),
        (
            "synchronous up with enable",
            &[
                ("type", "synchronous"),
                ("up_or_down", "up"),
                ("enable", "1"),
            ],
        ),
        (
            "synchronous updown",
            &[("type", "synchronous"), ("up_or_down", "updown")],
        ),
        (
            "synchronous updown with parallel load",
            &[
                ("type", "synchronous"),
                ("up_or_down", "updown"),
                ("enable", "1"),
                ("load", "1"),
            ],
        ),
    ];

    println!(
        "{:<40} {:>9} {:>12} {:>7} {:>7}",
        "variant", "delay ns", "area µm²", "gates", "CW ns"
    );
    let mut rows = Vec::new();
    for (label, attrs) in variants {
        let mut req = ComponentRequest::by_component("counter").attribute("size", "5");
        for (k, v) in attrs {
            req = req.attribute(*k, *v);
        }
        let name = icdb.request_component(&req)?;
        let inst = icdb.instance(&name)?;
        let delay = inst
            .report
            .output_delay("Q[4]")
            .unwrap_or_else(|| inst.report.worst_output_delay());
        let area = inst.area();
        println!(
            "{:<40} {:>9.1} {:>12.0} {:>7} {:>7.1}",
            label,
            delay,
            area,
            inst.netlist.gates.len(),
            inst.report.clock_width
        );
        rows.push((label, delay, area));
    }

    // The qualitative shape the paper reports: the ripple counter is the
    // slowest and the smallest; the fully-featured counter is the largest.
    let ripple = rows[0];
    let loaded = rows[4];
    println!();
    println!(
        "ripple is slowest: {}",
        rows[1..].iter().all(|r| r.1 < ripple.1)
    );
    println!(
        "ripple is smallest: {}",
        rows[1..].iter().all(|r| r.2 > ripple.2)
    );
    println!(
        "updown+load is largest: {}",
        rows[..4].iter().all(|r| r.2 < loaded.2)
    );
    Ok(())
}
