//! Two synthesis tools sharing one `icdbd` server.
//!
//! Spins the TCP server up in-process on an ephemeral port, connects two
//! clients, and shows the multi-session contract: isolated per-connection
//! instance namespaces (both clients get `counter$1`) over one shared
//! knowledge base and generation cache (the second generation is a warm
//! hit). Run with `cargo run --example icdbd_session`.

use icdb::cql::CqlArg;
use icdb::net::{IcdbClient, Server};
use icdb::IcdbService;
use std::sync::Arc;

fn generate_counter(client: &mut IcdbClient) -> Result<String, icdb::IcdbError> {
    let mut args = vec![CqlArg::OutStr(None)];
    client.execute(
        "command:request_component; component_name:counter; attribute:(size:5); \
         function:(INC); clock_width:30; generated_component:?s",
        &mut args,
    )?;
    match args.remove(0) {
        CqlArg::OutStr(Some(name)) => Ok(name),
        _ => unreachable!("?s slot is always filled on success"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = Arc::new(IcdbService::new());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 8)?;
    let handle = server.spawn()?;
    println!("icdbd listening on {}", handle.addr());

    let mut alice = IcdbClient::connect(handle.addr())?;
    let mut bob = IcdbClient::connect(handle.addr())?;

    let a = generate_counter(&mut alice)?;
    let b = generate_counter(&mut bob)?;
    println!("alice generated `{a}`, bob generated `{b}` — isolated namespaces");

    // The delay view travels multiline over the line protocol.
    let mut args = vec![CqlArg::InStr(a.clone()), CqlArg::OutStr(None)];
    alice.execute(
        "command:instance_query; generated_component:%s; delay:?s",
        &mut args,
    )?;
    if let CqlArg::OutStr(Some(delay)) = &args[1] {
        println!("alice's {a} delay report:\n{delay}");
    }

    let stats = service.cache_stats();
    println!(
        "shared generation cache: {} miss (alice, cold) + {} hit (bob, warm)",
        stats.result.misses, stats.result.hits
    );

    alice.quit()?;
    bob.quit()?;
    handle.shutdown();
    Ok(())
}
