//! End-to-end design-space exploration: "give me the cheapest counter
//! under a delay bound".
//!
//! The `icdb-explore` subsystem sweeps every counter implementation in
//! the knowledge base across bit-widths and sizing strategies (all
//! evaluations fan out through the generation cache), computes the exact
//! Pareto front over `(area, delay, power)`, and selects the minimum-area
//! point meeting the clock bound. The winning configuration is then
//! generated for real — sweep and request share the same cache entries,
//! so installing the winner is a warm hit.
//!
//! Run with: `cargo run --example explore_counter`

use icdb::{ComponentRequest, ExploreSpec, Icdb, Objective};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut icdb = Icdb::new();
    let bound_ns = 40.0;

    // Sweep: every counter implementation × three widths × both sizing
    // strategies, selecting min area s.t. clock width <= 40ns.
    let spec = ExploreSpec::by_component("counter")
        .widths([4, 6, 8])
        .strategies(["cheapest", "fastest"])
        .objective(Objective::MinAreaUnderDelay(bound_ns))
        .workers(4);
    let report = icdb.explore(&spec)?;

    // The full area/delay/power table, `*` marking the Pareto front.
    println!("{}", report.to_table());

    let winner = report
        .winner_point()
        .ok_or("no counter meets the delay bound")?;
    println!(
        "cheapest counter under {bound_ns}ns: {} ({:.0} um^2 at {:.1}ns, {:.0} uW)\n",
        winner.label(),
        winner.area,
        winner.delay,
        winner.power
    );

    // Publish the report as a relational table (like `cache_stats`)…
    icdb.publish_exploration(&report)?;
    let rows = icdb
        .db
        .query("SELECT candidate, area FROM exploration WHERE pareto = 1")?;
    println!("exploration table, Pareto rows:");
    for row in rows {
        println!(
            "  {} area={:.1}",
            row[0].as_text().unwrap_or("?"),
            row[1].as_real().unwrap_or(0.0)
        );
    }

    // …and generate the winning configuration for real. The sweep already
    // warmed the cache, so this request is a hash lookup, not a re-run of
    // the pipeline.
    let mut request = ComponentRequest::by_implementation(&winner.implementation)
        .strategy(winner.strategy.clone());
    for (key, value) in &winner.params {
        request = request.attribute(key.clone(), value.to_string());
    }
    let hits_before = icdb.cache_stats().result.hits;
    let instance = icdb.request_component(&request)?;
    assert!(icdb.cache_stats().result.hits > hits_before);
    println!("\ninstalled winner as `{instance}` (served from the generation cache):");
    println!("{}", icdb.delay_string(&instance)?);
    Ok(())
}
