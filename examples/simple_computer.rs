//! The Fig. 13 experiment: floorplanning a simple computer two ways.
//!
//! ICDB generates the datapath components (ALU, register file registers,
//! operand mux) and the control logic (from an inline IIF description —
//! "the third specification type is typically used for control logic
//! generation", §3.2.2). The floorplanner then combines their *shape
//! functions* in two slicing arrangements:
//!
//! * control logic tall-and-thin on the LEFT of the datapath stack, and
//! * control logic short-and-wide on the BOTTOM,
//!
//! reproducing the paper's two layouts with different aspect ratios.
//!
//! Run with: `cargo run --example simple_computer`

use icdb::layout::{best_by_aspect, SlicingTree};
use icdb::{ComponentRequest, Icdb};

/// A small hardwired control unit: a 2-bit phase counter and decoded
/// control lines for fetch/decode/execute/write-back of a 3-opcode machine.
const CONTROL_IIF: &str = "
NAME: CONTROL;
INORDER: CLK, RST, OP[3], ZFLAG;
OUTORDER: PC_INC, IR_LOAD, A_LOAD, B_LOAD, ALU_MODE, ALU_SUB, REG_WRITE, MEM_READ, MEM_WRITE, BRANCH;
PIIFVARIABLE: S0, S1, FETCH, DECODE, EXEC, WB;
{
  S0 = (!S0) @(~r CLK) ~a(0/RST);
  S1 = (S1 (+) S0) @(~r CLK) ~a(0/RST);
  FETCH  = !S1 * !S0;
  DECODE = !S1 *  S0;
  EXEC   =  S1 * !S0;
  WB     =  S1 *  S0;
  PC_INC   = FETCH;
  IR_LOAD  = FETCH;
  A_LOAD   = DECODE;
  B_LOAD   = DECODE;
  ALU_MODE = EXEC * OP[2];
  ALU_SUB  = EXEC * !OP[2] * OP[0];
  REG_WRITE = WB * !OP[1];
  MEM_READ  = FETCH + DECODE * OP[1];
  MEM_WRITE = WB * OP[1] * !OP[0];
  BRANCH    = EXEC * OP[1] * OP[0] * ZFLAG;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut icdb = Icdb::new();

    // Datapath components, 8-bit.
    println!("generating datapath components …");
    let alu =
        icdb.request_component(&ComponentRequest::by_implementation("ALU").attribute("size", "8"))?;
    let reg_a = icdb.request_component(
        &ComponentRequest::by_implementation("REGISTER").attribute("size", "8"),
    )?;
    let reg_b = icdb.request_component(
        &ComponentRequest::by_implementation("REGISTER").attribute("size", "8"),
    )?;
    let mux =
        icdb.request_component(&ComponentRequest::by_implementation("MUX").attribute("size", "8"))?;
    let pc = icdb.request_component(
        &ComponentRequest::by_component("counter")
            .attribute("size", "8")
            .attribute("type", "synchronous"),
    )?;
    // Control logic from inline IIF.
    let control = icdb.request_component(&ComponentRequest::from_iif(CONTROL_IIF))?;

    for name in [&alu, &reg_a, &reg_b, &mux, &pc, &control] {
        let inst = icdb.instance(name)?;
        let best = inst.shape.best_area().expect("has shapes");
        println!(
            "  {:<12} {:>3} gates, best {:>6.0}×{:<6.0} µm ({} shape alternatives)",
            inst.implementation,
            inst.netlist.gates.len(),
            best.width,
            best.height,
            inst.shape.alternatives.len()
        );
    }

    // Slicing trees over the components' shape functions.
    let leaf = |icdb: &Icdb, name: &str, label: &str| -> SlicingTree {
        SlicingTree::leaf(label, &icdb.instance(name).expect("generated").shape)
    };
    let datapath = |icdb: &Icdb| {
        SlicingTree::stack(
            SlicingTree::stack(
                SlicingTree::beside(leaf(icdb, &reg_a, "reg_a"), leaf(icdb, &reg_b, "reg_b")),
                SlicingTree::beside(leaf(icdb, &mux, "mux"), leaf(icdb, &pc, "pc")),
            ),
            leaf(icdb, &alu, "alu"),
        )
    };

    // Variant 1 (paper's left layout): control logic beside the datapath,
    // targeting a 1:1 aspect ratio.
    let plan_left = best_by_aspect(
        &SlicingTree::beside(leaf(&icdb, &control, "control"), datapath(&icdb)),
        1.0,
    )?;
    // Variant 2 (paper's right layout): control logic below the datapath,
    // targeting a 2:1 aspect ratio.
    let plan_bottom = best_by_aspect(
        &SlicingTree::stack(datapath(&icdb), leaf(&icdb, &control, "control")),
        2.0,
    )?;

    println!("\n=== control on the LEFT (target aspect 1:1) ===");
    print!("{plan_left}");
    println!("\n=== control on the BOTTOM (target aspect 2:1) ===");
    print!("{plan_bottom}");

    println!(
        "\narea comparison: left {:.0} µm² vs bottom {:.0} µm² — {} wins by {:.1}%",
        plan_left.area(),
        plan_bottom.area(),
        if plan_bottom.area() < plan_left.area() {
            "bottom"
        } else {
            "left"
        },
        100.0 * (plan_left.area() - plan_bottom.area()).abs()
            / plan_left.area().max(plan_bottom.area()),
    );
    println!(
        "aspect ratios: left {:.2}, bottom {:.2} (paper: ≈1:1 vs ≈2:1)",
        plan_left.aspect_ratio(),
        plan_bottom.aspect_ratio()
    );
    Ok(())
}
