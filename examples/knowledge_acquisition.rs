//! The knowledge-server side of ICDB (paper §2.2 and Fig. 2): inserting a
//! *new* parameterized component implementation at run time, after which it
//! is indistinguishable from a builtin — discoverable by function query,
//! generable with attributes and constraints, estimable and layoutable.
//!
//! Also shows the §2.1 merge query (REGISTER + INCREMENTER → COUNTER), the
//! §4.2 tool-manager query and the §1 power estimate.
//!
//! Run with: `cargo run --example knowledge_acquisition`

use icdb::cql::CqlArg;
use icdb::Icdb;

/// A gray-code counter, not part of the builtin library.
const GRAY_COUNTER: &str = "
NAME: GRAY_COUNTER;
PARAMETER: size;
INORDER: CLK, RST;
OUTORDER: G[size];
PIIFVARIABLE: B[size], C[size+1];
VARIABLE: i;
{
  /* binary core */
  C[0] = 1;
  #for(i=0;i<size;i++)
  {
    B[i] = (B[i] (+) C[i]) @(~r CLK) ~a(0/RST);
    C[i+1] = C[i] * B[i];
  }
  /* gray encoding of the binary state */
  #for(i=0;i<size-1;i++)
    G[i] = B[i] (+) B[i+1];
  G[size-1] = B[size-1];
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut icdb = Icdb::new();

    // 1. Knowledge acquisition through CQL: insert the implementation.
    let mut args = vec![CqlArg::InStr(GRAY_COUNTER.into()), CqlArg::OutStr(None)];
    icdb.execute(
        "command:insert_component;
         IIF:%s;
         component:Counter;
         function:(INC,COUNTER);
         parameter:(size:4);
         description:gray-code counter inserted at run time;
         implementation:?s",
        &mut args,
    )?;
    let CqlArg::OutStr(Some(inserted)) = &args[1] else {
        panic!()
    };
    println!("inserted implementation: {inserted}");

    // 2. It is discoverable like any builtin.
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:component_query; component:counter; function:(INC); ICDB_components:?s[]",
        &mut args,
    )?;
    let CqlArg::OutStrList(Some(counters)) = &args[0] else {
        panic!()
    };
    println!("counter implementations now: {counters:?}");

    // 3. Generate it with an attribute and query delay / power.
    let mut args = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component; implementation:GRAY_COUNTER;
         attribute:(size:6); generated_component:?s",
        &mut args,
    )?;
    let CqlArg::OutStr(Some(gray)) = args.remove(0) else {
        panic!()
    };
    let mut args = vec![
        CqlArg::InStr(gray.clone()),
        CqlArg::OutStr(None),
        CqlArg::OutStr(None),
    ];
    icdb.execute(
        "command:instance_query; instance:%s; delay:?s; power:?s",
        &mut args,
    )?;
    let CqlArg::OutStr(Some(delay)) = &args[1] else {
        panic!()
    };
    let CqlArg::OutStr(Some(power)) = &args[2] else {
        panic!()
    };
    println!("\n--- delay of {gray} ---\n{delay}");
    println!("--- power ---\n{power}");

    // 4. The §2.1 merge query: can a register and an incrementer be
    //    replaced by one component?
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:merge_query; components:(REGISTER,INCREMENTER); merged:?s[]",
        &mut args,
    )?;
    let CqlArg::OutStrList(Some(merged)) = &args[0] else {
        panic!()
    };
    println!("REGISTER + INCREMENTER can merge into: {merged:?}");

    // 5. The §4.2 tool manager: registered component generators.
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute("command:tool_query; generators:?s[]", &mut args)?;
    let CqlArg::OutStrList(Some(gens)) = &args[0] else {
        panic!()
    };
    println!("registered component generators: {gens:?}");
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:tool_query; name:embedded-milo; steps:?s[]",
        &mut args,
    )?;
    let CqlArg::OutStrList(Some(steps)) = &args[0] else {
        panic!()
    };
    println!("embedded-milo steps: {steps:?}");
    Ok(())
}
