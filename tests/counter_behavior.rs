//! End-to-end behavioral verification of the paper's flagship component:
//! the §3.1 counter, generated through the full ICDB pipeline (IIF →
//! synthesis → mapping) and exercised with the gate-level simulator — the
//! check the paper delegates to its VHDL simulator (§4.3).

use icdb::sim::{Logic, Simulator};
use icdb::{ComponentRequest, Icdb};

/// Generates the §3.3 counter: 5-bit synchronous up/down with enable and
/// asynchronous parallel load.
fn full_counter(icdb: &mut Icdb) -> String {
    icdb.request_component(
        &ComponentRequest::by_component("counter")
            .attribute("size", "5")
            .attribute("type", "synchronous")
            .attribute("up_or_down", "updown")
            .attribute("enable", "1")
            .attribute("load", "1"),
    )
    .expect("counter generates")
}

struct Bench<'a> {
    sim: Simulator<'a>,
}

impl<'a> Bench<'a> {
    fn new(netlist: &'a icdb::logic::GateNetlist, cells: &'a icdb::cells::Library) -> Bench<'a> {
        let mut sim = Simulator::new(netlist, cells).expect("acyclic");
        for (pin, v) in [
            ("CLK", Logic::Zero),
            ("ENA", Logic::One),
            ("DWUP", Logic::Zero),
            ("LOAD", Logic::One),
        ] {
            sim.set_by_name(pin, v).unwrap();
        }
        sim.set_bus("D", 5, 0).unwrap();
        sim.propagate();
        Bench { sim }
    }

    /// Asynchronously loads `value` through the active-low LOAD pin.
    fn load(&mut self, value: u64) {
        self.sim.set_bus("D", 5, value).unwrap();
        self.sim.set_by_name("LOAD", Logic::Zero).unwrap();
        self.sim.propagate();
        self.sim.set_by_name("LOAD", Logic::One).unwrap();
        self.sim.propagate();
    }

    fn clock(&mut self) {
        self.sim.pulse("CLK").unwrap();
    }

    fn q(&self) -> u64 {
        self.sim.bus("Q", 5).expect("Q defined")
    }
}

#[test]
fn loads_then_counts_up() {
    let mut icdb = Icdb::new();
    let name = full_counter(&mut icdb);
    let inst = icdb.instance(&name).unwrap().clone();
    let cells = icdb.cells.clone();
    let mut b = Bench::new(&inst.netlist, &cells);

    b.load(5);
    assert_eq!(b.q(), 5, "asynchronous load");
    for expect in [6, 7, 8] {
        b.clock();
        assert_eq!(b.q(), expect, "counting up");
    }
}

#[test]
fn counts_down_when_dwup_high() {
    let mut icdb = Icdb::new();
    let name = full_counter(&mut icdb);
    let inst = icdb.instance(&name).unwrap().clone();
    let cells = icdb.cells.clone();
    let mut b = Bench::new(&inst.netlist, &cells);

    b.load(6);
    b.sim.set_by_name("DWUP", Logic::One).unwrap();
    b.sim.propagate();
    for expect in [5, 4, 3] {
        b.clock();
        assert_eq!(b.q(), expect, "counting down");
    }
}

#[test]
fn enable_gates_the_clock() {
    let mut icdb = Icdb::new();
    let name = full_counter(&mut icdb);
    let inst = icdb.instance(&name).unwrap().clone();
    let cells = icdb.cells.clone();
    let mut b = Bench::new(&inst.netlist, &cells);

    b.load(9);
    b.sim.set_by_name("ENA", Logic::Zero).unwrap();
    b.sim.propagate();
    b.clock();
    b.clock();
    assert_eq!(b.q(), 9, "disabled counter must hold");
    b.sim.set_by_name("ENA", Logic::One).unwrap();
    b.sim.propagate();
    b.clock();
    assert_eq!(b.q(), 10, "counting resumes");
}

#[test]
fn wraps_and_flags_terminal_count() {
    let mut icdb = Icdb::new();
    let name = full_counter(&mut icdb);
    let inst = icdb.instance(&name).unwrap().clone();
    let cells = icdb.cells.clone();
    let mut b = Bench::new(&inst.netlist, &cells);

    b.load(30);
    // The rising edge advances 30 → 31; MINMAX = CLK · (carry of all bits)
    // is then visible during the high phase of that same cycle.
    b.sim.set_by_name("CLK", Logic::One).unwrap();
    b.sim.propagate();
    assert_eq!(b.q(), 31, "reached terminal count");
    assert_eq!(
        b.sim.get_by_name("MINMAX").unwrap(),
        Logic::One,
        "terminal count flagged at 31 while CLK high"
    );
    b.sim.set_by_name("CLK", Logic::Zero).unwrap();
    b.sim.propagate();
    assert_eq!(b.q(), 31, "holds through the low phase");
    b.clock();
    assert_eq!(b.q(), 0, "wraps to zero");
}

#[test]
fn load_dominates_clock() {
    let mut icdb = Icdb::new();
    let name = full_counter(&mut icdb);
    let inst = icdb.instance(&name).unwrap().clone();
    let cells = icdb.cells.clone();
    let mut b = Bench::new(&inst.netlist, &cells);

    b.load(3);
    // Hold LOAD active while clocking: the asynchronous load must win.
    b.sim.set_bus("D", 5, 20).unwrap();
    b.sim.set_by_name("LOAD", Logic::Zero).unwrap();
    b.sim.propagate();
    b.clock();
    b.clock();
    assert_eq!(b.q(), 20, "async load dominates while active");
}

#[test]
fn ripple_and_sync_variants_differ_structurally() {
    let mut icdb = Icdb::new();
    let ripple = icdb
        .request_component(
            &ComponentRequest::by_component("counter")
                .attribute("size", "5")
                .attribute("type", "ripple"),
        )
        .unwrap();
    let sync = icdb
        .request_component(
            &ComponentRequest::by_component("counter")
                .attribute("size", "5")
                .attribute("type", "synchronous"),
        )
        .unwrap();
    let r = icdb.instance(&ripple).unwrap();
    let s = icdb.instance(&sync).unwrap();
    assert!(
        r.netlist.gates.len() < s.netlist.gates.len(),
        "ripple ({}) must be smaller than synchronous ({})",
        r.netlist.gates.len(),
        s.netlist.gates.len()
    );
    // Paper Fig. 5: the ripple counter is the slowest to Q[4].
    let rd = r.report.output_delay("Q[4]").unwrap();
    let sd = s.report.output_delay("Q[4]").unwrap();
    assert!(
        rd > sd,
        "ripple Q[4] delay {rd} must exceed synchronous {sd}"
    );
}

#[test]
fn paper_delay_report_shape() {
    let mut icdb = Icdb::new();
    let name = full_counter(&mut icdb);
    let report = icdb.delay_string(&name).unwrap();
    // The §3.3 report lists CW, WD for all Q bits and MINMAX, SD for DWUP.
    assert!(report.contains("CW "), "{report}");
    for q in 0..5 {
        assert!(report.contains(&format!("WD Q[{q}]")), "{report}");
    }
    assert!(report.contains("WD MINMAX"), "{report}");
    assert!(report.contains("SD DWUP"), "{report}");
    assert!(report.contains("SD D[0]"), "{report}");
}
