//! Observability end-to-end: a real `icdbd` driven over TCP must answer
//! the read-only `metrics` CQL command and the `--metrics-addr` HTTP
//! endpoint with the *same* numbers — and both must agree with the
//! ground truth the `cache_query` and `persist` commands report, because
//! all three surfaces render one shared sample list
//! (`Icdb::metrics_samples` over `persist_fields`).
//!
//! Covered here:
//! - concurrent load → per-command request counters and latency
//!   histograms (with derived p50/p95/p99) on both surfaces;
//! - cache hit/miss/eviction mirrors equal to `cache_query`;
//! - WAL gauges equal to `persist`;
//! - a follower whose `lag_events` gauge reaches 0 after catch-up, with
//!   `icdb_role{role="follower"}` on the scrape;
//! - degraded mode (failpoints build): the latched fault flips
//!   `icdb_persist_degraded` / `icdb_wal_degraded` on every surface and
//!   `persist clear_fault:1` flips them back.

#![cfg(unix)]

use icdb::cql::CqlArg;
use icdb::net::IcdbClient;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "icdb-obs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("addr")
        .port()
}

/// A spawned daemon, SIGKILLed on drop so a failing test never leaks it.
struct Daemon(Option<Child>);

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

// The `Daemon` guard kills + reaps in every path.
#[allow(clippy::zombie_processes)]
fn spawn_icdbd(port: u16, data_dir: &Path, extra: &[&str]) -> Daemon {
    let mut args = vec![
        "--addr".to_string(),
        format!("127.0.0.1:{port}"),
        "--data-dir".to_string(),
        data_dir.to_str().expect("utf-8 temp path").to_string(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_icdbd"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn icdbd");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Daemon(Some(child));
        }
        assert!(Instant::now() < deadline, "icdbd did not come up");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn connect(port: u16) -> IcdbClient {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match IcdbClient::connect(("127.0.0.1", port)) {
            Ok(client) => return client,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("cannot connect to icdbd: {e}"),
        }
    }
}

/// One `GET /metrics` scrape; returns the exposition body.
fn scrape(port: u16) -> String {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect metrics port");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    assert!(
        head.starts_with("HTTP/1.0 200"),
        "scrape must answer 200, got head `{head}`"
    );
    assert!(
        head.contains("text/plain"),
        "scrape content type must be text exposition, got `{head}`"
    );
    body.to_string()
}

/// The value of a label-less sample in an exposition body.
fn sample(body: &str, name: &str) -> f64 {
    let prefix = format!("{name} ");
    body.lines()
        .find_map(|line| line.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("exposition lacks `{name}`:\n{body}"))
        .trim()
        .parse()
        .expect("sample value parses")
}

/// Runs a CQL command expecting `n` integer outputs.
fn query_ints(client: &mut IcdbClient, command: &str, n: usize) -> Vec<i64> {
    let mut args: Vec<CqlArg> = (0..n).map(|_| CqlArg::OutInt(None)).collect();
    client.execute(command, &mut args).expect("query ints");
    args.iter()
        .map(|a| match a {
            CqlArg::OutInt(Some(v)) => *v,
            other => panic!("expected filled ?d, got {other:?}"),
        })
        .collect()
}

fn query_str(client: &mut IcdbClient, command: &str) -> String {
    let mut args = [CqlArg::OutStr(None)];
    client.execute(command, &mut args).expect("query str");
    match args {
        [CqlArg::OutStr(Some(s))] => s,
        other => panic!("expected filled ?s, got {other:?}"),
    }
}

/// Process-wide CPU ticks (utime + stime) of a pid, from `/proc`.
#[cfg(target_os = "linux")]
fn proc_cpu_ticks(pid: u32) -> u64 {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).expect("read /proc stat");
    // Skip past `pid (comm)` — comm may contain spaces, so split at the
    // last `)`; utime/stime are stat(5) fields 14/15, i.e. 11/12 of the
    // remainder (which starts at field 3, the state).
    let fields: Vec<&str> = stat
        .rsplit_once(')')
        .expect("comm")
        .1
        .split_whitespace()
        .collect();
    fields[11].parse::<u64>().expect("utime") + fields[12].parse::<u64>().expect("stime")
}

/// Regression: a metrics-port peer that connects and closes — or
/// half-closes with a partial request head — must be dropped, not left
/// registered. A leaked conn under level-triggered epoll makes worker 0
/// busy-spin at 100% CPU and leaks the fd, and routine LB/k8s health
/// probes do exactly this.
#[test]
fn metrics_probe_connections_are_dropped_not_leaked() {
    let dir = temp_dir("probe");
    let port = free_port();
    let mport = free_port();
    let maddr = format!("127.0.0.1:{mport}");
    let daemon = spawn_icdbd(port, &dir, &["--metrics-addr", &maddr]);
    // The metrics listener may come up a beat after the CQL one.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if TcpStream::connect(("127.0.0.1", mport)).is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "metrics listener did not come up"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // k8s-style probes: connect, then close without sending a byte.
    for _ in 0..8 {
        drop(TcpStream::connect(("127.0.0.1", mport)).expect("probe connect"));
    }
    // Half-close with an incomplete head: the server can never produce
    // a response, so it must close its side rather than keep the conn.
    let mut probe = TcpStream::connect(("127.0.0.1", mport)).expect("half-close connect");
    probe.write_all(b"GET /met").expect("partial head");
    probe
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut sink = Vec::new();
    probe
        .read_to_end(&mut sink)
        .expect("server must close a half-closed probe, not hold it open");

    // The probes must not leave a worker busy-spinning on a leaked conn.
    #[cfg(target_os = "linux")]
    {
        let pid = daemon.0.as_ref().expect("child").id();
        let before = proc_cpu_ticks(pid);
        std::thread::sleep(Duration::from_millis(2_500));
        let delta = proc_cpu_ticks(pid) - before;
        assert!(
            delta < 100,
            "idle daemon burned {delta} CPU ticks in 2.5s after probes — leaked conn spinning?"
        );
    }
    let _ = &daemon;

    // And the endpoint still answers real scrapes.
    let body = scrape(mport);
    assert!(body.contains("# TYPE icdb_connections gauge"));
}

// ------------------------------------------------ surfaces must agree

/// Concurrent load against a real daemon, then every observability
/// surface is cross-checked: HTTP scrape vs `metrics` CQL (text and
/// typed) vs `cache_query` vs `persist`.
#[test]
fn metrics_cql_and_http_agree_with_cache_and_persist() {
    let dir = temp_dir("agree");
    let port = free_port();
    let mport = free_port();
    let maddr = format!("127.0.0.1:{mport}");
    let _daemon = spawn_icdbd(port, &dir, &["--metrics-addr", &maddr]);

    // Concurrent load: four clients, distinct + repeated requests, so
    // the cache sees both misses and hits and the WAL sees commits.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = connect(port);
                for i in 0..5 {
                    let size = 3 + (t + i) % 4;
                    let mut args = [CqlArg::OutStr(None)];
                    client
                        .execute(
                            &format!(
                                "command:request_component; component_name:counter; \
                                 attribute:(size:{size}); generated_component:?s"
                            ),
                            &mut args,
                        )
                        .expect("load request");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("load thread");
    }

    let mut client = connect(port);

    // An exploration sweep feeds the corpus surfaces too: cold misses,
    // recorded rows, and (on the repeat) exact-reuse prunes.
    for _ in 0..2 {
        let mut args = [CqlArg::OutStr(None)];
        client
            .execute(
                "command:explore; component:counter; widths:(3,4); winner:?s",
                &mut args,
            )
            .expect("sweep for corpus metrics");
    }

    // Both renderings carry the per-command latency histogram with
    // derived percentiles — the acceptance-criteria surface.
    let wire_text = client.metrics_text().expect("metrics text over CQL");
    let http_text = scrape(mport);
    for body in [&wire_text, &http_text] {
        for needle in [
            "# TYPE icdb_request_latency_us histogram",
            "icdb_requests_total{command=\"request_component\"}",
            "icdb_request_latency_us_bucket{command=\"request_component\",le=\"+Inf\"}",
            "icdb_request_latency_us_p50{command=\"request_component\"}",
            "icdb_request_latency_us_p95{command=\"request_component\"}",
            "icdb_request_latency_us_p99{command=\"request_component\"}",
            "icdb_wal_fsync_us_count",
            "icdb_wal_batch_events_sum",
            "icdb_cache_hit_ratio",
            "icdb_connections ",
            "icdb_repl_lag_events ",
            "icdb_corpus_entries ",
            "icdb_corpus_hits_total ",
            "icdb_corpus_misses_total ",
            "icdb_sweep_points_pruned_total ",
        ] {
            assert!(body.contains(needle), "surface lacks `{needle}`:\n{body}");
        }
    }
    assert!(
        sample(
            &http_text,
            "icdb_requests_total{command=\"request_component\"}"
        ) >= 20.0,
        "all 20 load requests must be counted"
    );

    // Ground truth from the classic commands…
    let cache = query_ints(
        &mut client,
        "command:cache_query; hits:?d; misses:?d; evictions:?d",
        3,
    );
    let persist = query_ints(
        &mut client,
        "command:persist; wal_events:?d; generation:?d; enabled:?d",
        3,
    );
    let corpus = query_ints(
        &mut client,
        "command:corpus; entries:?d; hits:?d; misses:?d; pruned:?d",
        4,
    );
    assert!(corpus[0] > 0, "the sweep must have recorded corpus rows");
    assert!(corpus[3] > 0, "the repeat sweep must have pruned via reuse");
    // …must match a scrape taken while the server is quiet (reads and
    // scrapes do not move cache or WAL counters).
    let body = scrape(mport);
    assert_eq!(sample(&body, "icdb_cache_hits_total") as i64, cache[0]);
    assert_eq!(sample(&body, "icdb_cache_misses_total") as i64, cache[1]);
    assert_eq!(sample(&body, "icdb_cache_evictions_total") as i64, cache[2]);
    assert_eq!(sample(&body, "icdb_wal_events") as i64, persist[0]);
    assert_eq!(sample(&body, "icdb_persist_generation") as i64, persist[1]);
    assert_eq!(sample(&body, "icdb_persist_enabled") as i64, persist[2]);
    assert_eq!(sample(&body, "icdb_corpus_entries") as i64, corpus[0]);
    assert_eq!(sample(&body, "icdb_corpus_hits_total") as i64, corpus[1]);
    assert_eq!(sample(&body, "icdb_corpus_misses_total") as i64, corpus[2]);
    assert_eq!(
        sample(&body, "icdb_sweep_points_pruned_total") as i64,
        corpus[3]
    );
    assert!(
        (sample(&body, "icdb_role{role=\"primary\"}") - 1.0).abs() < f64::EPSILON,
        "a primary advertises its role"
    );

    // The typed `metrics` command answers persist fields and label-less
    // samples directly, with the same values.
    let typed = query_ints(
        &mut client,
        "command:metrics; wal_events:?d; icdb_cache_hits_total:?d; icdb_connections:?d",
        3,
    );
    assert_eq!(typed[0], persist[0]);
    assert_eq!(typed[1], cache[0]);
    assert!(typed[2] >= 1, "this very connection is gauged");
}

// ---------------------------------------------------- follower lag

/// A follower's replication gauges: `lag_events` reaches 0 after
/// catch-up on the CQL surface *and* the Prometheus scrape, which also
/// advertises `icdb_role{role="follower"}`.
#[test]
fn follower_lag_reaches_zero_on_both_surfaces() {
    let primary_dir = temp_dir("lag-primary");
    let follower_dir = temp_dir("lag-follower");
    let pport = free_port();
    let fport = free_port();
    let fmport = free_port();
    let _primary = spawn_icdbd(pport, &primary_dir, &[]);

    let mut load = connect(pport);
    for size in 3..9 {
        let mut args = [CqlArg::OutStr(None)];
        load.execute(
            &format!(
                "command:request_component; component_name:counter; \
                 attribute:(size:{size}); generated_component:?s"
            ),
            &mut args,
        )
        .expect("primary load");
    }
    let primary_events = query_ints(&mut load, "command:persist; wal_events:?d", 1)[0];
    assert!(primary_events >= 6);

    let upstream = format!("127.0.0.1:{pport}");
    let fmaddr = format!("127.0.0.1:{fmport}");
    let _follower = spawn_icdbd(
        fport,
        &follower_dir,
        &["--replicate-from", &upstream, "--metrics-addr", &fmaddr],
    );

    // Catch-up: poll the canonical persist surface until lag hits 0.
    let mut follower = connect(fport);
    let deadline = Instant::now() + Duration::from_secs(30);
    let applied = loop {
        let v = query_ints(
            &mut follower,
            "command:persist; lag_events:?d; applied_seq:?d",
            2,
        );
        if v[0] == 0 && v[1] > 0 {
            break v[1];
        }
        assert!(Instant::now() < deadline, "follower never caught up: {v:?}");
        std::thread::sleep(Duration::from_millis(50));
    };

    // The metrics command and the scrape agree with persist.
    let typed = query_ints(
        &mut follower,
        "command:metrics; lag_events:?d; applied_seq:?d",
        2,
    );
    assert_eq!(typed, vec![0, applied]);
    assert_eq!(
        query_str(&mut follower, "command:metrics; role:?s"),
        "follower"
    );

    let body = scrape(fmport);
    assert_eq!(sample(&body, "icdb_persist_lag_events") as i64, 0);
    assert_eq!(sample(&body, "icdb_persist_applied_seq") as i64, applied);
    assert_eq!(sample(&body, "icdb_repl_applied_seq") as i64, applied);
    assert!(
        (sample(&body, "icdb_role{role=\"follower\"}") - 1.0).abs() < f64::EPSILON,
        "a follower advertises its role:\n{body}"
    );
}

// ------------------------------------------------- degraded mode

/// Degraded mode on the observability surfaces (failpoints build): the
/// first durability fault flips `icdb_persist_degraded` (derived from
/// the shared persist fields) and `icdb_wal_degraded` (the group-commit
/// latch) to 1 everywhere; `persist clear_fault:1` flips both back.
#[cfg(feature = "failpoints")]
mod degraded {
    use super::*;
    use icdb::net::Server;
    use icdb::store::fail::{self, FailKind, Trigger};
    use icdb::{IcdbError, IcdbService};
    use std::sync::Arc;

    #[test]
    fn degraded_mode_flips_metrics_on_every_surface() {
        fail::reset();
        let dir = temp_dir("degraded");
        let service =
            Arc::new(IcdbService::open_with_options(&dir, false, Duration::ZERO).unwrap());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 8).unwrap();
        let handle = server.spawn().unwrap();
        let mut client = IcdbClient::connect(handle.addr()).unwrap();

        let healthy = query_ints(
            &mut client,
            "command:metrics; degraded:?d; fault_errno:?d",
            2,
        );
        assert_eq!(healthy, vec![0, 0]);
        assert!(service.metrics_text().contains("icdb_persist_degraded 0"));
        assert!(service.metrics_text().contains("icdb_wal_degraded 0"));

        // The disk dies: every WAL append refuses with ENOSPC.
        fail::config("wal.append", Trigger::Always, FailKind::Enospc);
        let refused = client.execute(
            "command:request_component; component_name:counter; attribute:(size:4); \
             generated_component:?s",
            &mut [CqlArg::OutStr(None)],
        );
        assert!(
            matches!(refused, Err(IcdbError::ReadOnly(_))),
            "durability fault must refuse the commit, got {refused:?}"
        );

        let vitals = query_ints(
            &mut client,
            "command:metrics; degraded:?d; fault_errno:?d",
            2,
        );
        assert_eq!(vitals, vec![1, 28], "metrics reports degraded + ENOSPC");
        let text = service.metrics_text();
        assert!(text.contains("icdb_persist_degraded 1"), "{text}");
        assert!(text.contains("icdb_wal_degraded 1"), "{text}");
        assert!(text.contains("icdb_persist_fault_errno 28"), "{text}");

        // Disk fixed, operator re-arms: both latches drop on all surfaces.
        fail::remove("wal.append");
        let cleared = query_ints(
            &mut client,
            "command:persist; clear_fault:1; degraded:?d; fault_errno:?d",
            2,
        );
        assert_eq!(cleared, vec![0, 0]);
        let text = service.metrics_text();
        assert!(text.contains("icdb_persist_degraded 0"), "{text}");
        assert!(text.contains("icdb_wal_degraded 0"), "{text}");

        handle.shutdown();
        fail::reset();
    }
}
