//! Replication properties, in-process: a primary `Server` over a durable
//! `IcdbService`, a follower bootstrapped with [`icdb::repl::bootstrap`]
//! from a mid-history image (snapshot generation + nonempty WAL tail),
//! both driven over real TCP.
//!
//! Pinned properties:
//! - a follower bootstrapped mid-history converges to **byte-identical**
//!   read transcripts across every replicated namespace;
//! - `wait_seq` blocks until replication catches up (read-your-writes)
//!   and times out honestly;
//! - the `hello` handshake reports protocol/role, mutations on a
//!   follower fail typed as [`IcdbError::NotPrimary`], and `persist`
//!   reports the replication position;
//! - `persist promote:1` re-arms the follower as a writable primary and
//!   the tail loop stops itself cleanly;
//! - the cluster-aware client builder routes reads to the follower
//!   (surviving a primary outage) and falls back to the primary when the
//!   follower is unreachable.

#![cfg(unix)]

use icdb::cql::CqlArg;
use icdb::net::{IcdbClient, ReadPreference, RetryPolicy, Server, ServerHandle};
use icdb::{IcdbError, IcdbService};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icdb-repl-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable primary service served on an ephemeral port.
fn spawn_primary(dir: &PathBuf) -> (Arc<IcdbService>, ServerHandle, SocketAddr) {
    let service =
        Arc::new(IcdbService::open_with_options(dir, true, Duration::ZERO).expect("open primary"));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 16).expect("bind primary");
    let addr = server.local_addr().expect("primary addr");
    let handle = server.spawn().expect("spawn primary");
    (service, handle, addr)
}

/// Serves an already-bootstrapped follower service on an ephemeral port.
fn spawn_follower_server(service: &Arc<IcdbService>) -> (ServerHandle, SocketAddr) {
    let server = Server::bind("127.0.0.1:0", Arc::clone(service), 16).expect("bind follower");
    let addr = server.local_addr().expect("follower addr");
    (server.spawn().expect("spawn follower"), addr)
}

/// A string-typed CQL exchange; errors join the transcript (they must
/// match across nodes too).
fn exchange(client: &mut IcdbClient, command: &str, inputs: &[&str], outs: usize) -> Vec<String> {
    let mut args: Vec<CqlArg> = inputs
        .iter()
        .map(|s| CqlArg::InStr((*s).to_string()))
        .collect();
    for _ in 0..outs {
        args.push(CqlArg::OutStr(None));
    }
    match client.execute(command, &mut args) {
        Ok(()) => args
            .iter()
            .filter_map(|a| match a {
                CqlArg::OutStr(v) => Some(v.clone().unwrap_or_default()),
                _ => None,
            })
            .collect(),
        Err(e) => vec![format!("ERR {e}")],
    }
}

/// A namespace's mutation workload, parameterized so two namespaces hold
/// different state.
fn mutate(client: &mut IcdbClient, size: u32) -> Vec<String> {
    let mut log = Vec::new();
    log.extend(exchange(
        client,
        &format!(
            "command:request_component; component_name:counter; attribute:(size:{size}); \
             clock_width:30; generated_component:?s"
        ),
        &[],
        1,
    ));
    log.extend(exchange(
        client,
        &format!(
            "command:request_component; implementation:ADDER; attribute:(size:{size}); \
             generated_component:?s; CIF_layout:?s"
        ),
        &[],
        2,
    ));
    log.extend(exchange(
        client,
        "command:insert_component; IIF:%s; component:Counter; function:(INC,TICK); \
         description:acquired-for-replication; inserted:?s",
        &["NAME: REPL_TICKER; INORDER: A, B; OUTORDER: O; { O = A * B; }"],
        1,
    ));
    log
}

/// The read-only transcript compared byte-for-byte between primary and
/// follower.
fn transcript(client: &mut IcdbClient, size: u32) -> Vec<String> {
    let mut t = Vec::new();
    for instance in ["counter$1", "adder$2"] {
        t.extend(exchange(
            client,
            "command:instance_query; generated_component:%s; delay:?s; shape_function:?s; \
             area:?s; VHDL_head:?s",
            &[instance],
            4,
        ));
    }
    t.extend(exchange(
        client,
        "command:instance_query; generated_component:%s; CIF_layout:?s",
        &["adder$2"],
        1,
    ));
    t.extend(exchange(
        client,
        &format!(
            "command:explore; component:counter; widths:({size},{}); strategies:(cheapest,fastest); \
             winner:?s; table:?s",
            size + 1
        ),
        &[],
        2,
    ));
    t
}

/// The follower's replication position over the wire.
fn repl_position(client: &mut IcdbClient) -> (String, String, i64, i64) {
    let mut args = vec![
        CqlArg::OutStr(None),
        CqlArg::OutStr(None),
        CqlArg::OutInt(None),
        CqlArg::OutInt(None),
    ];
    client
        .execute(
            "command:persist; role:?s; upstream:?s; applied_seq:?d; lag_events:?d",
            &mut args,
        )
        .expect("persist position query");
    let s = |a: &CqlArg| match a {
        CqlArg::OutStr(Some(v)) => v.clone(),
        _ => String::new(),
    };
    let d = |a: &CqlArg| match a {
        CqlArg::OutInt(Some(v)) => *v,
        _ => -1,
    };
    (s(&args[0]), s(&args[1]), d(&args[2]), d(&args[3]))
}

#[test]
fn mid_history_bootstrap_yields_byte_identical_transcripts() {
    let dir_p = temp_dir("primary");
    let dir_f = temp_dir("follower");
    let (_service_p, handle_p, addr_p) = spawn_primary(&dir_p);

    // Namespace 1: mutations, then a checkpoint (snapshot generation
    // rolls), then more mutations — the bootstrap image is snapshot N
    // plus a nonempty WAL tail.
    let mut client1 = IcdbClient::connect(addr_p).expect("connect primary");
    let ns1 = client1.session_ns().expect("ns from greeting");
    mutate(&mut client1, 4);
    let mut none: Vec<CqlArg> = vec![];
    client1
        .execute("command:persist; checkpoint:1", &mut none)
        .expect("mid-history checkpoint");
    // Namespace 2: a different workload, entirely after the checkpoint.
    let mut client2 = IcdbClient::connect(addr_p).expect("connect primary");
    let ns2 = client2.session_ns().expect("ns from greeting");
    mutate(&mut client2, 6);
    mutate(&mut client1, 5);

    let follower = icdb::repl::bootstrap(&addr_p.to_string(), &dir_f, true, Duration::ZERO)
        .expect("bootstrap follower");
    assert_eq!(follower.service().role(), "follower");
    let (handle_f, addr_f) = spawn_follower_server(follower.service());

    // Read-your-writes barrier: wait until the follower has replayed
    // everything each primary client saw acked.
    let mut fclient1 = IcdbClient::connect(addr_f).expect("connect follower");
    fclient1.attach(ns1).expect("attach replicated ns1");
    let caught_up = fclient1
        .wait_seq(client1.last_commit_seq(), Duration::from_secs(10))
        .expect("follower catches up on ns1");
    assert!(caught_up >= client1.last_commit_seq());
    let mut fclient2 = IcdbClient::connect(addr_f).expect("connect follower");
    fclient2.attach(ns2).expect("attach replicated ns2");
    fclient2
        .wait_seq(client2.last_commit_seq(), Duration::from_secs(10))
        .expect("follower catches up on ns2");

    // The whole read surface answers locally, byte-identical, in every
    // replicated namespace.
    assert_eq!(transcript(&mut client1, 4), transcript(&mut fclient1, 4));
    assert_eq!(transcript(&mut client2, 6), transcript(&mut fclient2, 6));

    // The handshake and the persist surface report the topology.
    let hello = fclient1.hello().expect("hello on follower");
    assert_eq!(hello.protocol, icdb::net::PROTOCOL_VERSION);
    assert_eq!(hello.role, "follower");
    assert_eq!(client1.hello().expect("hello on primary").role, "primary");
    let (role, upstream, applied, lag) = repl_position(&mut fclient1);
    assert_eq!(role, "follower");
    assert_eq!(upstream, addr_p.to_string());
    assert!(applied > 0, "applied_seq not reported: {applied}");
    assert_eq!(lag, 0, "follower should be caught up");

    // Mutations on the follower are refused, typed.
    let mut args = vec![CqlArg::OutStr(None)];
    let refusal = fclient1.execute(
        "command:request_component; implementation:ADDER; attribute:(size:9); \
         generated_component:?s",
        &mut args,
    );
    assert!(
        matches!(refusal, Err(IcdbError::NotPrimary(ref m)) if m.contains(&addr_p.to_string())),
        "expected NotPrimary naming the upstream, got {refusal:?}"
    );
    assert!(follower.stall_reason().is_none(), "replication stalled");

    handle_f.shutdown();
    handle_p.shutdown();
    drop(follower);
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_f).ok();
}

/// The exploration corpus rides the WAL-shipping stream like any other
/// journaled state: a primary sweep's recorded rows converge onto the
/// follower, which serves byte-identical `corpus` answers locally — and
/// a follower-side sweep of uncovered grid points must *not* fork the
/// corpus (its un-journalable pending rows are discarded, not applied).
#[test]
fn follower_serves_corpus_reads_and_converges() {
    fn corpus_answer(client: &mut IcdbClient) -> (i64, Vec<String>) {
        let mut args = vec![CqlArg::OutInt(None), CqlArg::OutStrList(None)];
        client
            .execute("command:corpus; entries:?d; list:?s[]", &mut args)
            .expect("corpus query");
        let CqlArg::OutStrList(Some(list)) = args.pop().unwrap() else {
            panic!("no corpus list");
        };
        let CqlArg::OutInt(Some(entries)) = args[0] else {
            panic!("no corpus entry count");
        };
        (entries, list)
    }

    let dir_p = temp_dir("corpus-primary");
    let dir_f = temp_dir("corpus-follower");
    let (_service_p, handle_p, addr_p) = spawn_primary(&dir_p);

    // A primary sweep records corpus rows; the journal flush rides the
    // explore command itself, so by the time the response lands the rows
    // are in the WAL.
    let mut client = IcdbClient::connect(addr_p).expect("connect primary");
    let mut args = vec![CqlArg::OutStr(None)];
    client
        .execute(
            "command:explore; component:counter; widths:(3,4); \
             strategies:(cheapest,fastest); winner:?s",
            &mut args,
        )
        .expect("primary sweep");
    let primary_answer = corpus_answer(&mut client);
    assert!(primary_answer.0 > 0, "primary sweep must record rows");

    let follower = icdb::repl::bootstrap(&addr_p.to_string(), &dir_f, true, Duration::ZERO)
        .expect("bootstrap follower");
    let (handle_f, addr_f) = spawn_follower_server(follower.service());
    let mut fclient = IcdbClient::connect(addr_f).expect("connect follower");

    // Convergence barrier: poll the replication position until the
    // follower has applied everything durable upstream.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, applied, lag) = repl_position(&mut fclient);
        if applied > 0 && lag == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        corpus_answer(&mut fclient),
        primary_answer,
        "replicated corpus answers must be byte-identical"
    );

    // A follower-side sweep over *uncovered* grid points queues rows it
    // cannot journal; they must be discarded — same answers afterwards,
    // no divergence from the primary.
    let mut args = vec![CqlArg::OutStr(None)];
    fclient
        .execute(
            "command:explore; component:counter; widths:(5); winner:?s",
            &mut args,
        )
        .expect("follower sweep");
    assert_eq!(
        corpus_answer(&mut fclient),
        primary_answer,
        "a follower sweep must not fork the corpus"
    );
    assert!(follower.stall_reason().is_none(), "replication stalled");

    handle_f.shutdown();
    handle_p.shutdown();
    drop(follower);
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_f).ok();
}

#[test]
fn wait_seq_blocks_until_the_event_arrives_and_times_out_honestly() {
    let dir_p = temp_dir("waitseq-primary");
    let dir_f = temp_dir("waitseq-follower");
    let (_service_p, handle_p, addr_p) = spawn_primary(&dir_p);

    let mut client = IcdbClient::connect(addr_p).expect("connect primary");
    let ns = client.session_ns().expect("ns from greeting");
    mutate(&mut client, 4);
    let seq_before = client.last_commit_seq();

    let follower = icdb::repl::bootstrap(&addr_p.to_string(), &dir_f, true, Duration::ZERO)
        .expect("bootstrap follower");
    let (handle_f, addr_f) = spawn_follower_server(follower.service());
    let mut fclient = IcdbClient::connect(addr_f).expect("connect follower");
    fclient.attach(ns).expect("attach replicated ns");
    fclient
        .wait_seq(seq_before, Duration::from_secs(10))
        .expect("catch up to the pre-bootstrap history");

    // Block on a sequence that does not exist yet; release it from a
    // delayed primary mutation.
    let writer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        mutate(&mut client, 5);
        client.last_commit_seq()
    });
    let started = Instant::now();
    let seen = fclient
        .wait_seq(seq_before + 1, Duration::from_secs(10))
        .expect("wait_seq releases when the replicated event lands");
    let elapsed = started.elapsed();
    assert!(seen > seq_before);
    assert!(
        elapsed >= Duration::from_millis(150),
        "wait_seq returned in {elapsed:?} — it must actually block"
    );
    let final_seq = writer.join().expect("writer thread");
    fclient
        .wait_seq(final_seq, Duration::from_secs(10))
        .expect("full catch-up");

    // A sequence nobody will ever write times out with the typed error.
    let timeout = fclient.wait_seq(final_seq + 1_000, Duration::from_millis(200));
    assert!(
        matches!(timeout, Err(IcdbError::Cql(ref m)) if m.contains("timed out")),
        "expected a wait_seq timeout, got {timeout:?}"
    );

    handle_f.shutdown();
    handle_p.shutdown();
    drop(follower);
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_f).ok();
}

#[test]
fn promote_rearms_the_follower_as_a_writable_primary() {
    let dir_p = temp_dir("promote-primary");
    let dir_f = temp_dir("promote-follower");
    let (_service_p, handle_p, addr_p) = spawn_primary(&dir_p);

    let mut client = IcdbClient::connect(addr_p).expect("connect primary");
    let ns = client.session_ns().expect("ns from greeting");
    mutate(&mut client, 4);

    let follower = icdb::repl::bootstrap(&addr_p.to_string(), &dir_f, true, Duration::ZERO)
        .expect("bootstrap follower");
    let (handle_f, addr_f) = spawn_follower_server(follower.service());
    let mut fclient = IcdbClient::connect(addr_f).expect("connect follower");
    fclient.attach(ns).expect("attach replicated ns");
    fclient
        .wait_seq(client.last_commit_seq(), Duration::from_secs(10))
        .expect("catch up before promoting");

    let mut none: Vec<CqlArg> = vec![];
    fclient
        .execute("command:persist; promote:1", &mut none)
        .expect("promote the follower");
    assert_eq!(fclient.hello().expect("hello").role, "primary");
    let (role, upstream, _, _) = repl_position(&mut fclient);
    assert_eq!(role, "primary");
    assert_eq!(upstream, "", "promotion clears the upstream");

    // The promoted node accepts writes on the replicated namespace.
    let mut args = vec![CqlArg::OutStr(None)];
    fclient
        .execute(
            "command:request_component; implementation:ADDER; attribute:(size:7); \
             generated_component:?s",
            &mut args,
        )
        .expect("writes accepted after promotion");
    assert!(matches!(&args[0], CqlArg::OutStr(Some(name)) if name.starts_with("adder$")));

    // The tail loop notices the promotion on its next poll round and
    // stops itself — cleanly, not as a stall. Give it a couple of
    // long-poll rounds, then join (instant once the loop has exited).
    std::thread::sleep(Duration::from_millis(1_200));
    assert!(
        follower.stall_reason().is_none(),
        "promotion must be a clean self-stop, not a stall: {:?}",
        follower.stall_reason()
    );
    let mut follower = follower;
    follower.stop();

    handle_f.shutdown();
    handle_p.shutdown();
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_f).ok();
}

#[test]
fn cluster_client_routes_reads_to_the_follower_and_falls_back() {
    let dir_p = temp_dir("cluster-primary");
    let dir_f = temp_dir("cluster-follower");
    let (_service_p, handle_p, addr_p) = spawn_primary(&dir_p);
    let follower = icdb::repl::bootstrap(&addr_p.to_string(), &dir_f, true, Duration::ZERO)
        .expect("bootstrap follower");
    let (handle_f, addr_f) = spawn_follower_server(follower.service());

    let fast_fail = RetryPolicy {
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    let mut cluster = IcdbClient::builder()
        .primary(addr_p)
        .follower(addr_f)
        .retry_policy(fast_fail.clone())
        .read_preference(ReadPreference::PreferFollower)
        .read_your_writes(true)
        .connect()
        .expect("cluster client connects");

    // Mutations go to the primary; the follower-routed read that follows
    // waits out replication lag via wait_seq before answering.
    let log = mutate(&mut cluster, 4);
    assert!(log.iter().any(|l| l == "counter$1"), "{log:?}");
    let read = exchange(
        &mut cluster,
        "command:instance_query; generated_component:%s; delay:?s",
        &["counter$1"],
        1,
    );
    assert!(read[0].contains("CW "), "follower read failed: {read:?}");

    // Kill the primary: reads keep working (served by the follower).
    handle_p.shutdown();
    let read = exchange(
        &mut cluster,
        "command:instance_query; generated_component:%s; delay:?s",
        &["counter$1"],
        1,
    );
    assert!(
        read[0].contains("CW "),
        "reads must survive a primary outage: {read:?}"
    );
    // Mutations cannot: they need the primary.
    let mut args = vec![CqlArg::OutStr(None)];
    assert!(cluster
        .execute(
            "command:request_component; implementation:ADDER; attribute:(size:8); \
             generated_component:?s",
            &mut args,
        )
        .is_err());

    // Fallback direction: a dead follower endpoint must not break reads.
    let dir_p2 = temp_dir("cluster-primary2");
    let (_service_p2, handle_p2, addr_p2) = spawn_primary(&dir_p2);
    let dead = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
        probe.local_addr().expect("probe addr")
    };
    let mut lopsided = IcdbClient::builder()
        .primary(addr_p2)
        .follower(dead)
        .retry_policy(fast_fail)
        .read_preference(ReadPreference::PreferFollower)
        .read_your_writes(true)
        .connect()
        .expect("cluster client with dead follower connects");
    let log = mutate(&mut lopsided, 4);
    assert!(log.iter().any(|l| l == "counter$1"), "{log:?}");
    let read = exchange(
        &mut lopsided,
        "command:instance_query; generated_component:%s; delay:?s",
        &["counter$1"],
        1,
    );
    assert!(
        read[0].contains("CW "),
        "reads must fall back to the primary: {read:?}"
    );

    handle_f.shutdown();
    handle_p2.shutdown();
    drop(follower);
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_f).ok();
    std::fs::remove_dir_all(&dir_p2).ok();
}
