//! Property-based suite for the design-space exploration subsystem: the
//! Pareto front is exactly the undominated set and is order-invariant, a
//! parallel sweep is point-for-point identical to a sequential one, and a
//! warm re-exploration is answered from the generation cache.

use icdb::explore::{dominates, pareto_front, DesignPoint, Explorer, Objective};
use icdb::{ComponentRequest, ExploreSpec, Icdb};
use proptest::prelude::*;

/// Random metric triples; small ranges force plenty of ties and
/// duplicates, the interesting cases for exact dominance.
fn arb_metrics() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..12, 0u32..12, 0u32..12), 1..24)
}

fn points_from(metrics: &[(u32, u32, u32)]) -> Vec<DesignPoint> {
    metrics
        .iter()
        .enumerate()
        .map(|(i, &(a, d, p))| DesignPoint {
            implementation: format!("P{i:02}"),
            strategy: "cheapest".to_string(),
            area: f64::from(a),
            delay: f64::from(d),
            power: f64::from(p),
            gates: i,
            met: true,
            ..DesignPoint::default()
        })
        .collect()
}

/// A deterministic sweep spec covering ≥3 counter implementations ×
/// ≥3 bit-widths × both sizing strategies.
fn counter_sweep() -> ExploreSpec {
    ExploreSpec::by_component("counter")
        .widths([3, 4, 5])
        .strategies(["cheapest", "fastest"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The front is *exactly* the undominated set: every excluded point is
    /// dominated by some front point, and no front point is dominated.
    #[test]
    fn front_is_exactly_the_undominated_set(metrics in arb_metrics()) {
        let points = points_from(&metrics);
        let front = pareto_front(&points);
        prop_assert!(!front.is_empty(), "a non-empty set has a front");
        for i in 0..points.len() {
            let dominated = points.iter().any(|q| dominates(q, &points[i]));
            prop_assert_eq!(
                front.contains(&i),
                !dominated,
                "point {} front membership must equal undominatedness", i
            );
            if !front.contains(&i) {
                // Every dominated point is beaten by a *front* point too
                // (dominance is transitive on the finite set).
                prop_assert!(
                    front.iter().any(|&f| dominates(&points[f], &points[i])),
                    "excluded point {} must be dominated by a front point", i
                );
            }
        }
    }

    /// Shuffling the insertion order never changes the finished report:
    /// the explorer canonicalizes before computing front and winner.
    #[test]
    fn finished_report_is_insertion_order_invariant(
        metrics in arb_metrics(),
        rotation in 0usize..24,
    ) {
        let points = points_from(&metrics);
        let mut forward = Explorer::new(Objective::default());
        for p in &points {
            forward.add_point(p.clone());
        }
        let mut permuted = Explorer::new(Objective::default());
        let k = rotation % points.len().max(1);
        for p in points[k..].iter().chain(&points[..k]).rev() {
            permuted.add_point(p.clone());
        }
        let (a, b) = (forward.finish(), permuted.finish());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_table(), b.to_table());
    }

    /// The winner under a delay bound is the minimum-area feasible point,
    /// and it sits on the front.
    #[test]
    fn winner_is_min_area_feasible(metrics in arb_metrics(), bound in 0u32..12) {
        let points = points_from(&metrics);
        let mut ex = Explorer::new(Objective::MinAreaUnderDelay(f64::from(bound)));
        for p in &points {
            ex.add_point(p.clone());
        }
        let report = ex.finish();
        let feasible: Vec<&DesignPoint> =
            report.points.iter().filter(|p| p.delay <= f64::from(bound)).collect();
        match report.winner {
            None => prop_assert!(feasible.is_empty()),
            Some(w) => {
                prop_assert!(report.on_front(w), "winner must be Pareto-optimal");
                let winner = &report.points[w];
                prop_assert!(winner.delay <= f64::from(bound));
                for p in feasible {
                    prop_assert!(winner.area <= p.area, "winner is min-area feasible");
                }
            }
        }
    }
}

proptest! {
    // Real sweeps run the generation pipeline; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A parallel sweep is byte-identical to a sequential one, point for
    /// point — worker count (0 included, clamped to sequential) never
    /// changes the report.
    #[test]
    fn parallel_sweep_equals_sequential(workers in 0usize..6) {
        let sequential = Icdb::new()
            .explore(&counter_sweep().workers(1))
            .unwrap();
        let parallel = Icdb::new()
            .explore(&counter_sweep().workers(workers))
            .unwrap();
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.to_table(), parallel.to_table());
    }
}

proptest! {
    // Real sweeps again — small case count, wide grid coverage.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Corpus-pruned sweeps return the exact same report — points, front,
    /// winner and rendered table — as unpruned ones, across random grids
    /// and both exactness dials, with every saved evaluation counted.
    #[test]
    fn pruned_sweeps_match_unpruned_across_random_grids(
        wmask in 1u8..8,
        both_strategies in any::<bool>(),
        exact in any::<bool>(),
    ) {
        let widths: Vec<i64> = [3i64, 4, 5]
            .iter()
            .enumerate()
            .filter(|(i, _)| wmask & (1 << i) != 0)
            .map(|(_, w)| *w)
            .collect();
        let strategies = if both_strategies {
            vec!["cheapest", "fastest"]
        } else {
            vec!["cheapest"]
        };
        let spec = ExploreSpec::by_component("counter")
            .widths(widths)
            .strategies(strategies);

        let mut icdb = Icdb::new();
        let (cold, cold_stats) = icdb
            .explore_with_stats(&spec.clone().prune(false))
            .unwrap();
        prop_assert_eq!(cold_stats.evaluated, cold_stats.grid);
        prop_assert_eq!(cold_stats.pruned, 0, "prune:0 evaluates everything");
        prop_assert_eq!(cold_stats.recorded, cold_stats.grid);
        icdb.flush_corpus().unwrap();
        prop_assert_eq!(icdb.corpus_len(), cold_stats.grid);

        let (warm, warm_stats) = icdb
            .explore_with_stats(&spec.clone().prune_exact(exact))
            .unwrap();
        prop_assert_eq!(&cold, &warm, "pruned report must equal unpruned");
        prop_assert_eq!(cold.to_table(), warm.to_table());
        prop_assert_eq!(
            warm_stats.evaluated, 0,
            "a fully-warm corpus answers every grid point"
        );
        prop_assert_eq!(warm_stats.corpus_hits, warm_stats.grid);
        prop_assert_eq!(warm_stats.pruned, warm_stats.grid);
    }
}

/// Margin mode on a partially-covered grid: points it skips are counted
/// in `pruned`, never silently dropped, and every point it *does* report
/// is byte-identical to one from a fully-evaluated sweep.
#[test]
fn margin_mode_counts_skipped_points_and_reports_only_real_ones() {
    let mut icdb = Icdb::new();
    let narrow = ExploreSpec::by_component("counter")
        .widths([3, 4])
        .strategies(["cheapest", "fastest"]);
    icdb.explore_with_stats(&narrow.prune(false)).unwrap();
    icdb.flush_corpus().unwrap();

    let (report, stats) = icdb
        .explore_with_stats(&counter_sweep().prune_exact(false))
        .unwrap();
    let full = Icdb::new().explore(&counter_sweep().prune(false)).unwrap();
    assert_eq!(stats.grid, full.points.len());
    // Accounting is exhaustive: every grid point was reused, evaluated,
    // or skipped — and the skipped ones are exactly the missing report
    // entries.
    let skipped = stats.grid - report.points.len();
    assert_eq!(stats.evaluated + stats.corpus_hits + skipped, stats.grid);
    assert_eq!(stats.pruned, stats.grid - stats.evaluated);
    for p in &report.points {
        assert!(
            full.points.contains(p),
            "margin-mode point {p:?} must match a fully-evaluated one"
        );
    }
}

#[test]
fn sweep_covers_three_counters_and_three_widths() {
    let icdb = Icdb::new();
    let counters = icdb.library.by_component_type("counter");
    assert!(counters.len() >= 3, "{:?}", counters.len());
    let report = icdb.explore(&counter_sweep()).unwrap();
    assert_eq!(report.points.len(), counters.len() * 3 * 2);
    // All three implementations and all three widths appear.
    for imp in ["COUNTER", "RIPPLE_COUNTER", "JOHNSON_COUNTER"] {
        assert!(
            report.points.iter().any(|p| p.implementation == imp),
            "{imp} missing from the sweep"
        );
    }
    for width in [3i64, 4, 5] {
        assert!(report
            .points
            .iter()
            .any(|p| p.params.iter().any(|(k, v)| k == "size" && *v == width)));
    }
    assert!(report.winner.is_some());
}

#[test]
fn warm_re_exploration_hits_the_generation_cache() {
    let icdb = Icdb::new();
    let cold = icdb.explore(&counter_sweep()).unwrap();
    let cold_stats = icdb.cache_stats().result;
    assert_eq!(cold_stats.misses, cold.points.len() as u64);

    let warm = icdb.explore(&counter_sweep()).unwrap();
    let warm_stats = icdb.cache_stats().result;
    assert_eq!(
        warm_stats.hits - cold_stats.hits,
        cold.points.len() as u64,
        "every warm grid point must be a result-layer hit"
    );
    assert_eq!(warm_stats.misses, cold_stats.misses, "no new cold work");
    assert_eq!(cold, warm, "payload-derived points are identical");
    assert_eq!(cold.to_table(), warm.to_table());
}

/// An exploration sweep shares cache entries with plain component
/// requests: generating a swept configuration first makes the sweep's
/// evaluation of it warm, and vice versa.
#[test]
fn sweeps_share_the_cache_with_plain_requests() {
    let mut icdb = Icdb::new();
    icdb.request_component(
        &ComponentRequest::by_implementation("RIPPLE_COUNTER")
            .attribute("size", "4")
            .strategy("cheapest"),
    )
    .unwrap();
    let before = icdb.cache_stats().result;
    icdb.explore(&counter_sweep()).unwrap();
    let after = icdb.cache_stats().result;
    assert!(
        after.hits > before.hits,
        "the pre-generated grid point must be served warm"
    );
}

#[test]
fn served_explore_publishes_only_on_request() {
    use icdb::cql::CqlArg;
    let service = icdb::IcdbService::shared();
    let session = service.open_session();

    // The plain served command (and an explicit `publish:0`) runs under
    // the shared lock and leaves the relational mirror untouched…
    for command in [
        "command:explore; component:counter; widths:(4); winner:?s",
        "command:explore; component:counter; widths:(4); publish:0; winner:?s",
    ] {
        let mut args = vec![CqlArg::OutStr(None)];
        session.execute(command, &mut args).unwrap();
        let rows = service
            .read()
            .db
            .query("SELECT candidate FROM exploration")
            .unwrap();
        assert!(rows.is_empty(), "shared-lock explore must not publish");
    }

    // …while `publish:1` routes to the exclusive path and mirrors every
    // point into the `exploration` table.
    let mut args = vec![CqlArg::OutStr(None), CqlArg::OutInt(None)];
    session
        .execute(
            "command:explore; component:counter; widths:(4); publish:1; winner:?s; points:?d",
            &mut args,
        )
        .unwrap();
    let CqlArg::OutInt(Some(points)) = &args[1] else {
        panic!("no point count");
    };
    let rows = service
        .read()
        .db
        .query("SELECT candidate FROM exploration")
        .unwrap();
    assert_eq!(rows.len(), *points as usize);
}

#[test]
fn cql_explore_rejects_malformed_bounds() {
    let mut icdb = Icdb::new();
    let mut args = vec![icdb::cql::CqlArg::OutStr(None)];
    // A present-but-unparsable bound must error, not silently fall back
    // to the default weighted objective.
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); max_delay:40ns; winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("max_delay"), "{err}");
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); max_area:big; winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("max_area"), "{err}");
    // Two objective families at once cannot silently shadow each other.
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); max_delay:40; max_area:20000; \
             winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("one objective"),
        "conflicting objectives must error: {err}"
    );
    // Non-finite weights would poison every score.
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); weights:(area:nan,delay:1); \
             winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("finite"), "{err}");
    // Negative weights would reward dominated points that the
    // front-restricted selection can never return.
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); weights:(area:-1,delay:1); \
             winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("non-negative"), "{err}");
    // A positional (non-attribute) weights list must not silently fall
    // back to the default objective.
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); weights:(2,1,0); winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("attribute list"), "{err}");
    // A non-integer publish flag must not silently mean "don't publish".
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); publish:yes; winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("publish"), "{err}");
}

#[test]
fn cql_explore_rejects_unknown_weight_keys() {
    let mut icdb = Icdb::new();
    let mut args = vec![icdb::cql::CqlArg::OutStr(None)];
    // A typoed weight key must error, not silently score everything 0.
    let err = icdb
        .execute(
            "command:explore; component:counter; widths:(4); weights:(aera:2,delay:1); winner:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("aera"), "{err}");
    // Well-formed weights work.
    icdb.execute(
        "command:explore; component:counter; widths:(4); weights:(area:1,delay:2,power:1); \
         winner:?s",
        &mut args,
    )
    .unwrap();
    let icdb::cql::CqlArg::OutStr(Some(winner)) = &args[0] else {
        panic!("no winner");
    };
    assert!(!winner.is_empty());
}

#[test]
fn cql_explore_matches_the_direct_api_and_publishes() {
    let mut icdb = Icdb::new();
    let direct = icdb
        .explore(&counter_sweep().objective(Objective::MinAreaUnderDelay(1e9)))
        .unwrap();

    let mut args = vec![
        icdb::cql::CqlArg::InReal(1e9),
        icdb::cql::CqlArg::OutStr(None),
        icdb::cql::CqlArg::OutStrList(None),
        icdb::cql::CqlArg::OutInt(None),
        icdb::cql::CqlArg::OutReal(None),
    ];
    icdb.execute(
        "command:explore; component:counter; widths:(3,4,5); \
         strategies:(cheapest,fastest); max_delay:%r; \
         winner:?s; front:?s[]; points:?d; area:?r",
        &mut args,
    )
    .unwrap();
    let icdb::cql::CqlArg::OutStr(Some(winner)) = &args[1] else {
        panic!("no winner");
    };
    let icdb::cql::CqlArg::OutStrList(Some(front)) = &args[2] else {
        panic!("no front");
    };
    let icdb::cql::CqlArg::OutInt(Some(points)) = &args[3] else {
        panic!("no point count");
    };
    let icdb::cql::CqlArg::OutReal(Some(area)) = &args[4] else {
        panic!("no area");
    };
    assert_eq!(winner, &direct.winner_point().unwrap().label());
    assert_eq!(front, &direct.front_lines());
    assert_eq!(*points as usize, direct.points.len());
    assert_eq!(*area, direct.winner_point().unwrap().area);

    // The exclusive-path execute also mirrored the report into the
    // relational `exploration` table.
    let rows = icdb
        .db
        .query("SELECT candidate FROM exploration WHERE pareto = 1")
        .unwrap();
    assert_eq!(rows.len(), direct.front.len());
}
