//! Chaos suite: fault-injection failpoints firing inside the WAL,
//! snapshot and checkpoint paths, with the properties the robustness
//! work guarantees:
//!
//! - **No acknowledged commit is ever lost.** Whatever errors fire,
//!   recovery replays at least every commit that returned `Ok`.
//! - **Every injected error leaves the WAL replayable** — a reboot never
//!   meets an un-scannable journal.
//! - **Degraded mode is wire-visible and exits cleanly**: the first
//!   durability fault latches read-only mode; commits refuse with `ERR
//!   readonly` while reads, `attach` and fresh sessions keep serving;
//!   `persist` reports `degraded:1` + the errno; `persist clear_fault:1`
//!   re-arms writes once the underlying fault is gone.
//! - **Group-commit broadcasts failures**: every waiter in a failing
//!   batch observes the error; nobody hangs in `wait_durable`.
//! - **The client's `RetryPolicy` rides out a SIGKILL + restart** of a
//!   real `icdbd` without manual intervention.
//!
//! Run with `cargo test --features failpoints --test chaos_properties`.
//! The failpoint registry is process-global, so every test serializes on
//! one gate and resets the registry around itself.

#![cfg(feature = "failpoints")]

use icdb::cql::CqlArg;
use icdb::net::{IcdbClient, RetryPolicy, Server};
use icdb::store::fail::{self, FailKind, Trigger};
use icdb::store::wal::{GroupWal, WalWriter};
use icdb::{ComponentRequest, Icdb, IcdbError, IcdbService, NsId};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Serializes every test in this binary (the failpoint registry is
/// process-global) and clears leftover failpoints on entry and exit.
static GATE: Mutex<()> = Mutex::new(());

struct FailGate(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FailGate {
    fn drop(&mut self) {
        fail::reset();
    }
}

fn gate() -> FailGate {
    let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    fail::reset();
    FailGate(guard)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "icdb-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request_of(kind: u8, size: u32) -> ComponentRequest {
    match kind % 4 {
        0 => ComponentRequest::by_component("counter").attribute("size", size.to_string()),
        1 => ComponentRequest::by_implementation("ADDER").attribute("size", size.to_string()),
        2 => ComponentRequest::by_implementation("REGISTER")
            .attribute("size", size.to_string())
            .clock_width(30.0),
        _ => ComponentRequest::by_implementation("MUX").attribute("size", size.to_string()),
    }
}

// ------------------------------------------------- acked-commit safety

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random mutation scripts with WAL-append errors firing on every
    /// nth record: an `Ok` return is an acknowledged commit and must
    /// survive recovery; the fault latches read-only mode; clearing the
    /// fault (once the failpoint is disarmed) re-arms commits; and the
    /// journal stays replayable through all of it.
    #[test]
    fn injected_wal_errors_never_lose_acked_commits(
        specs in proptest::collection::vec((0u8..4, 2u32..6), 2..8),
        nth in 1u32..4,
        kind_ix in 0usize..3,
    ) {
        let _g = gate();
        let kind = [FailKind::Enospc, FailKind::Eio, FailKind::ShortWrite][kind_ix];
        let dir = temp_dir("inject");
        let mut acked: Vec<String> = Vec::new();
        {
            let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
            fail::config("wal.append", Trigger::EveryNth(nth), kind);
            let mut saw_fault = false;
            for (k, s) in &specs {
                match icdb.request_component(&request_of(*k, *s)) {
                    Ok(name) => acked.push(name),
                    Err(_) => saw_fault = true,
                }
            }
            if saw_fault {
                // The fault latched: the server is degraded and further
                // commits refuse as read-only without touching memory.
                prop_assert!(icdb.journal_fault().is_some());
                let refused = icdb.request_component(&request_of(0, 3));
                prop_assert!(matches!(refused, Err(IcdbError::ReadOnly(_))));
            }
            // Disarm the "disk" and re-arm the journal; commits work again.
            fail::remove("wal.append");
            let cleared = icdb.clear_journal_fault().unwrap();
            prop_assert_eq!(cleared, icdb.journal_fault().is_none() && saw_fault);
            prop_assert!(icdb.journal_fault().is_none());
            let name = icdb
                .request_component(&ComponentRequest::by_implementation("ADDER"))
                .unwrap();
            acked.push(name);
        }
        // Reboot: the journal must be replayable and contain every ack.
        let recovered = Icdb::open_with_sync(&dir, false).unwrap();
        for name in &acked {
            prop_assert!(
                recovered.instance(name).is_ok(),
                "acknowledged {} lost after recovery", name
            );
        }
        prop_assert!(recovered.journal_fault().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}

// -------------------------------------------- group-commit broadcasting

/// Every waiter of a batch whose flush failed observes the error — none
/// hangs in `wait_durable` — and once the fault is cleared with a fresh
/// WAL generation the group accepts and acknowledges commits again.
#[test]
fn failing_batch_broadcasts_the_error_to_every_waiter() {
    let _g = gate();
    let dir = temp_dir("batch-bcast");
    std::fs::create_dir_all(&dir).unwrap();
    let (writer, _) = WalWriter::open(&dir.join("wal-0.log"), false).unwrap();
    // A generous window so all four submissions ride one batch.
    let wal = GroupWal::new(writer, false, Duration::from_millis(50));

    fail::config("wal.append", Trigger::Once, FailKind::Enospc);
    let seqs: Vec<u64> = (0..4)
        .map(|i| wal.submit(vec![b'a' + i as u8; 16]).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for &seq in &seqs {
            let wal = &wal;
            scope.spawn(move || {
                let result = wal.wait_durable(seq);
                assert!(result.is_err(), "waiter {seq} missed the batch fault");
            });
        }
    });
    let fault = wal.fault().expect("fault latched");
    assert_eq!(
        fault.errno(),
        Some(28),
        "ENOSPC errno travels with the fault"
    );

    // Re-arm on a fresh generation: submissions flow and ack again.
    fail::remove("wal.append");
    let (writer, scan) = WalWriter::open(&dir.join("wal-1.log"), false).unwrap();
    assert_eq!(scan.records.len(), 0);
    wal.clear_fault(writer);
    assert!(wal.fault().is_none());
    let seq = wal.submit(b"recovered".to_vec()).unwrap();
    wal.wait_durable(seq).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent sessions commit through the service while an EIO starts
/// firing mid-run: every thread returns (no waiter hangs), the service
/// reports degraded, and a reboot replays at least the acknowledged
/// prefix.
#[test]
fn concurrent_commits_with_mid_run_eio_keep_the_acked_prefix() {
    let _g = gate();
    let dir = temp_dir("batch-eio");
    let acked: Vec<(NsId, String)> = {
        let service = Arc::new(
            IcdbService::open_with_options(&dir, false, Duration::from_millis(2)).unwrap(),
        );
        fail::config("wal.append", Trigger::AfterK(5), FailKind::Eio);
        let acked = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    let service = Arc::clone(&service);
                    scope.spawn(move || {
                        let session = service.open_session();
                        let ns = session.ns();
                        let mut mine = Vec::new();
                        for size in [2 + i, 3 + i, 4 + i] {
                            if let Ok(name) = session.request_component(
                                &ComponentRequest::by_implementation("ADDER")
                                    .attribute("size", size.to_string()),
                            ) {
                                mine.push((ns, name));
                            }
                        }
                        session.park();
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("committer thread returned"))
                .collect::<Vec<_>>()
        });
        // 16 journal records against a fault from the 6th append on: the
        // service must be degraded by the end.
        let stats = service.persist_stats().expect("durable service");
        assert!(stats.degraded, "fault must latch degraded mode");
        assert!(stats.fault_errno.is_some());
        acked
    };
    fail::reset();
    let recovered = Icdb::open_with_sync(&dir, false).unwrap();
    for (ns, name) in &acked {
        let have: Vec<String> = recovered
            .instance_names_in(*ns)
            .map(|v| v.iter().map(|n| n.to_string()).collect())
            .unwrap_or_default();
        assert!(
            have.contains(name),
            "acknowledged {name} missing from {ns} after recovery"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------ checkpoint failpoints

/// Snapshot write/rename failures abort the checkpoint without touching
/// the journal; a prune failure degrades to keeping stale generations.
/// In every case the data dir recovers the same state.
#[test]
fn checkpoint_failpoints_leave_the_journal_replayable() {
    let _g = gate();
    let dir = temp_dir("ckpt");
    let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
    let name = icdb
        .request_component(&ComponentRequest::by_implementation("ADDER"))
        .unwrap();

    fail::config("snapshot.write", Trigger::Once, FailKind::Enospc);
    assert!(icdb.checkpoint().is_err(), "snapshot write error surfaces");
    drop(icdb);
    let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
    assert!(
        icdb.instance(&name).is_ok(),
        "state survives a failed write"
    );

    fail::config("snapshot.rename", Trigger::Once, FailKind::Eio);
    assert!(icdb.checkpoint().is_err(), "snapshot rename error surfaces");
    drop(icdb);
    let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
    assert!(
        icdb.instance(&name).is_ok(),
        "state survives a failed rename"
    );

    // A prune failure is non-fatal: the checkpoint lands, old generations
    // merely linger until the next one.
    fail::config("checkpoint.prune", Trigger::Once, FailKind::Eio);
    icdb.checkpoint().unwrap();
    drop(icdb);
    let icdb = Icdb::open_with_sync(&dir, false).unwrap();
    assert!(icdb.instance(&name).is_ok());
    assert_eq!(
        icdb.persist_stats().unwrap().recovered_events,
        0,
        "checkpointed boot needs no replay"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------------- wire-visible degrading

fn wire_exchange(
    client: &mut IcdbClient,
    command: &str,
    inputs: &[&str],
    outs: usize,
) -> Result<Vec<String>, IcdbError> {
    let mut args: Vec<CqlArg> = inputs
        .iter()
        .map(|s| CqlArg::InStr((*s).to_string()))
        .collect();
    for _ in 0..outs {
        args.push(CqlArg::OutStr(None));
    }
    client.execute(command, &mut args)?;
    Ok(args
        .iter()
        .filter_map(|a| match a {
            CqlArg::OutStr(v) => Some(v.clone().unwrap_or_default()),
            _ => None,
        })
        .collect())
}

fn wire_persist_ints(client: &mut IcdbClient, command: &str, outs: usize) -> Vec<i64> {
    let mut args: Vec<CqlArg> = (0..outs).map(|_| CqlArg::OutInt(None)).collect();
    client.execute(command, &mut args).expect("persist query");
    args.iter()
        .map(|a| match a {
            CqlArg::OutInt(Some(v)) => *v,
            other => panic!("expected integer output, got {other:?}"),
        })
        .collect()
}

/// The full degraded-mode lifecycle over a real TCP connection: healthy
/// commits ack with `commit:<seq>`; the first durability fault answers
/// `ERR readonly` and latches; reads, fresh connections and `persist`
/// introspection keep working; `persist clear_fault:1` re-arms; commits
/// resume with the sequence intact.
#[test]
fn degraded_mode_is_wire_visible_and_exits_cleanly() {
    let _g = gate();
    let dir = temp_dir("wire-degraded");
    let service = Arc::new(IcdbService::open_with_options(&dir, false, Duration::ZERO).unwrap());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 8).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    let mut client = IcdbClient::connect(addr).unwrap();
    let healthy = wire_exchange(
        &mut client,
        "command:request_component; implementation:ADDER; attribute:(size:4); \
         generated_component:?s",
        &[],
        1,
    )
    .unwrap()
    .remove(0);
    let seq_healthy = client.last_commit_seq();
    assert!(seq_healthy >= 1);

    // The "disk" dies: ENOSPC on every WAL append from here on.
    fail::config("wal.append", Trigger::Always, FailKind::Enospc);
    let first = wire_exchange(
        &mut client,
        "command:request_component; implementation:MUX; attribute:(size:3); \
         generated_component:?s",
        &[],
        1,
    );
    assert!(
        matches!(first, Err(IcdbError::ReadOnly(_))),
        "first durability failure answers ERR readonly, got {first:?}"
    );
    let second = wire_exchange(
        &mut client,
        "command:request_component; implementation:MUX; attribute:(size:5); \
         generated_component:?s",
        &[],
        1,
    );
    assert!(
        matches!(second, Err(IcdbError::ReadOnly(_))),
        "latched degraded mode refuses commits up front, got {second:?}"
    );

    // Reads keep serving from the shared paths.
    let delay = wire_exchange(
        &mut client,
        "command:instance_query; generated_component:%s; delay:?s",
        &[&healthy],
        1,
    )
    .unwrap();
    assert!(!delay[0].is_empty(), "reads must survive degraded mode");

    // The fault is introspectable: degraded flag and the causing errno.
    let vitals = wire_persist_ints(
        &mut client,
        "command:persist; degraded:?d; fault_errno:?d",
        2,
    );
    assert_eq!(vitals, vec![1, 28], "persist reports degraded + ENOSPC");

    // Fresh connections still open sessions while degraded.
    let probe = IcdbClient::connect(addr).unwrap();
    assert!(probe.session_ns().is_some());
    drop(probe);

    // Operator fixes the disk, re-arms over the wire; commits resume.
    fail::remove("wal.append");
    let vitals = wire_persist_ints(
        &mut client,
        "command:persist; clear_fault:1; degraded:?d; fault_errno:?d",
        2,
    );
    assert_eq!(vitals, vec![0, 0], "clear_fault re-arms the journal");
    let revived = wire_exchange(
        &mut client,
        "command:request_component; implementation:REGISTER; attribute:(size:4); \
         clock_width:30; generated_component:?s",
        &[],
        1,
    )
    .unwrap()
    .remove(0);
    assert!(client.last_commit_seq() > seq_healthy);

    // Shut down with the client still attached: the workers park live
    // sessions, so the namespace (and its acked commits) survives the
    // reboot. A `quit` would instead delete the session namespace.
    handle.shutdown();
    drop(client);
    drop(service);

    // Reboot: both acknowledged commits survive (in whichever parked
    // namespace the session landed in).
    let recovered = Icdb::open_with_sync(&dir, false).unwrap();
    let have: Vec<String> = recovered
        .namespace_ids()
        .into_iter()
        .flat_map(|ns| {
            recovered
                .instance_names_in(ns)
                .map(|v| v.iter().map(|n| n.to_string()).collect::<Vec<_>>())
                .unwrap_or_default()
        })
        .collect();
    for name in [&healthy, &revived] {
        assert!(
            have.contains(name),
            "acknowledged {name} missing after recovery (have {have:?})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// --------------------------------------------- client retry over a kill

#[cfg(unix)]
mod sigkill {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::process::{Child, Command, Stdio};
    use std::time::Instant;

    fn free_port() -> u16 {
        TcpListener::bind("127.0.0.1:0")
            .expect("bind ephemeral")
            .local_addr()
            .expect("addr")
            .port()
    }

    /// A spawned daemon, SIGKILLed when dropped so a failing test never
    /// leaks a process.
    pub(super) struct Daemon(Option<Child>);

    impl Daemon {
        fn kill(&mut self) {
            if let Some(mut child) = self.0.take() {
                child.kill().expect("SIGKILL icdbd");
                child.wait().expect("reap icdbd");
            }
        }
    }

    impl Drop for Daemon {
        fn drop(&mut self) {
            if let Some(mut child) = self.0.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    // The `Daemon` guard kills + reaps in every path.
    #[allow(clippy::zombie_processes)]
    fn spawn_icdbd(port: u16, data_dir: &Path) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_icdbd"))
            .args([
                "--addr",
                &format!("127.0.0.1:{port}"),
                "--data-dir",
                data_dir.to_str().expect("utf-8 temp path"),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn icdbd");
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            if TcpStream::connect(("127.0.0.1", port)).is_ok() {
                return Daemon(Some(child));
            }
            assert!(Instant::now() < deadline, "icdbd did not come up");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// A client under a [`RetryPolicy`] completes a read workload across
    /// a server SIGKILL + restart without manual intervention: the lost
    /// connection is redialed with backoff, the session re-attached, the
    /// read re-sent — and the acked commit sequence carries over.
    #[test]
    fn retry_policy_survives_sigkill_and_restart() {
        let _g = gate();
        let port = free_port();
        let dir = temp_dir("retry-kill");
        let mut daemon = spawn_icdbd(port, &dir);

        let policy = RetryPolicy {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_retries: 100,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_millis(250),
            jitter_seed: 7,
        };
        let mut client = IcdbClient::connect_with(("127.0.0.1", port), policy).unwrap();
        let name = wire_exchange(
            &mut client,
            "command:request_component; implementation:ADDER; attribute:(size:5); \
             generated_component:?s",
            &[],
            1,
        )
        .unwrap()
        .remove(0);
        let seq = client.last_commit_seq();
        assert!(seq >= 1);
        let before = wire_exchange(
            &mut client,
            "command:instance_query; generated_component:%s; delay:?s",
            &[&name],
            1,
        )
        .unwrap();

        // SIGKILL, and restart on the same dir+port only after a delay —
        // the client's first reconnect attempts must ride the backoff.
        daemon.kill();
        let restart_dir = dir.clone();
        let restarter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            spawn_icdbd(port, &restart_dir)
        });

        let after = wire_exchange(
            &mut client,
            "command:instance_query; generated_component:%s; delay:?s",
            &[&name],
            1,
        )
        .expect("read workload must complete across the kill+restart");
        assert_eq!(before, after, "recovered answer must be identical");
        assert_eq!(
            client.last_commit_seq(),
            seq,
            "re-attach restores the acked commit sequence"
        );

        // Commits work against the restarted server too.
        wire_exchange(
            &mut client,
            "command:request_component; implementation:MUX; attribute:(size:4); \
             generated_component:?s",
            &[],
            1,
        )
        .expect("post-restart commit");
        assert!(client.last_commit_seq() > seq);

        let _ = client.quit();
        let mut daemon2 = restarter.join().expect("restarter thread");
        daemon2.kill();
        std::fs::remove_dir_all(&dir).ok();
    }
}
