//! Property-based tests over the core invariants of the generation path:
//! random boolean behaviors survive the *entire* pipeline (IIF text →
//! parse → expand → optimize → map → simulate) unchanged; estimators obey
//! their monotonicity contracts; the floorplanner is exactly optimal.

use icdb::cells::Library;
use icdb::layout::{best_by_area, SlicingTree};
use icdb::logic::{minimize, quick_factor, sop_eval, Cover, Cube, GateNetlist};
use icdb::sim::{Logic, Simulator};
use proptest::prelude::*;

// ---------------------------------------------------------------- helpers

/// A random expression tree over `n` variables, rendered as IIF text.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, asg: &[bool]) -> bool {
        match self {
            Expr::Var(v) => asg[*v],
            Expr::Not(e) => !e.eval(asg),
            Expr::And(a, b) => a.eval(asg) && b.eval(asg),
            Expr::Or(a, b) => a.eval(asg) || b.eval(asg),
            Expr::Xor(a, b) => a.eval(asg) ^ b.eval(asg),
        }
    }

    fn to_iif(&self) -> String {
        match self {
            Expr::Var(v) => format!("I[{v}]"),
            Expr::Not(e) => format!("!({})", e.to_iif()),
            Expr::And(a, b) => format!("({} * {})", a.to_iif(), b.to_iif()),
            Expr::Or(a, b) => format!("({} + {})", a.to_iif(), b.to_iif()),
            Expr::Xor(a, b) => format!("({} (+) {})", a.to_iif(), b.to_iif()),
        }
    }
}

fn arb_expr(vars: usize, depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..vars).prop_map(Expr::Var);
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// Runs the full pipeline on an expression and returns the mapped netlist.
fn synthesize_expr(expr: &Expr, vars: usize) -> (GateNetlist, Library) {
    let src = format!(
        "NAME: RND; INORDER: I[{vars}]; OUTORDER: O; {{ O = {}; }}",
        expr.to_iif()
    );
    let lib = Library::standard();
    let module = icdb::iif::parse(&src).expect("generated IIF parses");
    let flat = icdb::iif::expand(&module, &[], &icdb::iif::NoModules).expect("expands");
    let nl = icdb::logic::synthesize(&flat, &lib, &Default::default()).expect("synthesizes");
    (nl, lib)
}

/// A random cover over `n` variables.
fn arb_cover(n: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(proptest::collection::vec(0..3u8, n), 1..=max_cubes).prop_map(
        move |cubes| {
            let cubes: Vec<Cube> = cubes
                .into_iter()
                .map(|codes| {
                    let lits: Vec<(usize, bool)> = codes
                        .iter()
                        .enumerate()
                        .filter_map(|(v, c)| match c {
                            0 => Some((v, false)),
                            1 => Some((v, true)),
                            _ => None,
                        })
                        .collect();
                    Cube::from_literals(n, &lits)
                })
                .collect();
            Cover::from_cubes(n, cubes)
        },
    )
}

fn all_assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << n).map(move |m| (0..n).map(|v| (m >> v) & 1 == 1).collect())
}

// ------------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// End-to-end: random behavior in, identical behavior out of the
    /// mapped gate netlist — expansion, minimization, factoring, subject
    /// graph construction and tree covering together never change the
    /// function.
    #[test]
    fn pipeline_preserves_random_functions(expr in arb_expr(5, 4)) {
        let vars = 5;
        let (nl, lib) = synthesize_expr(&expr, vars);
        let mut sim = Simulator::new(&nl, &lib).expect("acyclic");
        for asg in all_assignments(vars) {
            for (v, &bit) in asg.iter().enumerate() {
                sim.set_by_name(&format!("I[{v}]"), Logic::from_bool(bit)).unwrap();
            }
            sim.propagate();
            let got = sim.get_by_name("O").unwrap().to_bool().expect("defined");
            prop_assert_eq!(got, expr.eval(&asg), "assignment {:?}", asg);
        }
    }

    /// The espresso-style minimizer is function-preserving and never
    /// increases cube count.
    #[test]
    fn minimize_preserves_and_shrinks(cover in arb_cover(6, 10)) {
        let minimized = minimize(cover.clone());
        for asg in all_assignments(6) {
            prop_assert_eq!(minimized.eval(&asg), cover.eval(&asg));
        }
        prop_assert!(minimized.cubes.len() <= cover.cubes.len().max(1));
    }

    /// Algebraic factoring preserves the function and never increases the
    /// literal count.
    #[test]
    fn factoring_preserves_function(cover in arb_cover(6, 8)) {
        let sop = icdb::logic::cover_to_sop(&cover);
        let tree = quick_factor(&sop);
        for asg in all_assignments(6) {
            prop_assert_eq!(tree.eval(&asg), sop_eval(&sop, &asg));
        }
        let flat_lits: usize = sop.iter().map(Vec::len).sum();
        prop_assert!(tree.literal_count() <= flat_lits.max(1));
    }

    /// Shape functions are monotone staircases for arbitrary adder sizes.
    #[test]
    fn shape_functions_are_staircases(size in 2i64..10) {
        let lib = Library::standard();
        let m = icdb::iif::parse(
            "NAME: A; PARAMETER: size; INORDER: I0[size], I1[size], Cin;
             OUTORDER: O[size], Cout; PIIFVARIABLE: C[size+1]; VARIABLE: i;
             { C[0] = Cin;
               #for(i=0;i<size;i++)
               { O[i] = I0[i] (+) I1[i] (+) C[i];
                 C[i+1] = I0[i]*I1[i] + I0[i]*C[i] + I1[i]*C[i]; }
               Cout = C[size]; }").unwrap();
        let flat = icdb::iif::expand(&m, &[("size", size)], &icdb::iif::NoModules).unwrap();
        let nl = icdb::logic::synthesize(&flat, &lib, &Default::default()).unwrap();
        let sf = icdb::estimate::estimate_shape(&nl, &lib, 8).unwrap();
        prop_assert!(sf.is_staircase(), "{:?}", sf);
        prop_assert!(!sf.alternatives.is_empty());
    }

    /// Stockmeyer floorplanning is exactly optimal on two-level trees:
    /// compare against brute force over every shape choice.
    #[test]
    fn floorplan_is_optimal(
        a in proptest::collection::vec((5.0f64..50.0, 5.0f64..50.0), 1..4),
        b in proptest::collection::vec((5.0f64..50.0, 5.0f64..50.0), 1..4),
        c in proptest::collection::vec((5.0f64..50.0, 5.0f64..50.0), 1..4),
        vertical_first in any::<bool>(),
    ) {
        let sub = if vertical_first {
            SlicingTree::beside(
                SlicingTree::leaf_shapes("a", a.clone()),
                SlicingTree::leaf_shapes("b", b.clone()),
            )
        } else {
            SlicingTree::stack(
                SlicingTree::leaf_shapes("a", a.clone()),
                SlicingTree::leaf_shapes("b", b.clone()),
            )
        };
        let tree = SlicingTree::stack(sub, SlicingTree::leaf_shapes("c", c.clone()));
        let fp = best_by_area(&tree).unwrap();
        let mut brute = f64::INFINITY;
        for &(wa, ha) in &a {
            for &(wb, hb) in &b {
                let (w1, h1) = if vertical_first {
                    (wa + wb, ha.max(hb))
                } else {
                    (wa.max(wb), ha + hb)
                };
                for &(wc, hc) in &c {
                    brute = brute.min(w1.max(wc) * (h1 + hc));
                }
            }
        }
        prop_assert!((fp.area() - brute).abs() < 1e-6,
                     "floorplan {} vs brute force {}", fp.area(), brute);
    }

    /// Transistor sizing under a uniform drive never breaks netlist
    /// validity, and `fastest` never makes the worst delay worse.
    #[test]
    fn sizing_is_safe_and_helpful(size in 2i64..6) {
        let lib = Library::standard();
        let m = icdb::iif::parse(
            "NAME: C; PARAMETER: size; INORDER: CLK; OUTORDER: Q[size];
             PIIFVARIABLE: K[size+1]; VARIABLE: i;
             { K[0] = 1;
               #for(i=0;i<size;i++)
               { Q[i] = (Q[i] (+) K[i]) @(~r CLK); K[i+1] = K[i] * Q[i]; } }").unwrap();
        let flat = icdb::iif::expand(&m, &[("size", size)], &icdb::iif::NoModules).unwrap();
        let mut nl = icdb::logic::synthesize(&flat, &lib, &Default::default()).unwrap();
        let loads = icdb::estimate::LoadSpec::uniform(20.0);
        let before = icdb::estimate::estimate_delay(&nl, &lib, &loads).unwrap();
        let r = icdb::sizing::size_netlist(
            &mut nl, &lib, &loads, &icdb::sizing::Strategy::Fastest);
        nl.validate(&lib).unwrap();
        prop_assert!(r.report.clock_width <= before.clock_width + 1e-9);
    }
}

/// CIF output is well-formed for every builtin at default attributes —
/// run as one deterministic test (layouts are deterministic).
#[test]
fn cif_well_formed_for_all_builtins() {
    let mut icdb = icdb::Icdb::new();
    let names: Vec<String> = icdb.library.iter().map(|c| c.name.clone()).collect();
    for imp in names {
        let inst = icdb
            .request_component(&icdb::ComponentRequest::by_implementation(&imp))
            .unwrap();
        let cif = icdb.cif_layout(&inst).unwrap();
        assert!(
            icdb::layout::cif_is_well_formed(&cif),
            "{imp} CIF malformed"
        );
    }
}
