//! Every builtin component implementation through the full generation path
//! (expand → synthesize → size → estimate) with behavioral verification by
//! simulation — the paper's correctness check (§4.3) applied across the
//! whole generic component library.

use icdb::sim::{Logic, Simulator};
use icdb::{ComponentRequest, Icdb};

fn generate(icdb: &mut Icdb, imp: &str, attrs: &[(&str, &str)]) -> String {
    let mut req = ComponentRequest::by_implementation(imp);
    for (k, v) in attrs {
        req = req.attribute(*k, *v);
    }
    icdb.request_component(&req)
        .unwrap_or_else(|e| panic!("{imp} failed to generate: {e}"))
}

#[test]
fn every_builtin_generates_with_default_attributes() {
    let mut icdb = Icdb::new();
    let names: Vec<String> = icdb.library.iter().map(|c| c.name.clone()).collect();
    for imp in names {
        let name = generate(&mut icdb, &imp, &[]);
        let inst = icdb.instance(&name).unwrap();
        assert!(!inst.netlist.gates.is_empty(), "{imp} produced no gates");
        assert!(!inst.shape.alternatives.is_empty(), "{imp} has no shapes");
        assert!(inst.shape.is_staircase(), "{imp} shape not a staircase");
    }
}

#[test]
fn whole_library_generates_well_under_five_minutes() {
    // §4.4: "ICDB can generate the gate-level netlist for most
    // microarchitecture components under five minutes."
    let start = std::time::Instant::now();
    let mut icdb = Icdb::new();
    let names: Vec<String> = icdb.library.iter().map(|c| c.name.clone()).collect();
    let count = names.len();
    for imp in names {
        generate(&mut icdb, &imp, &[]);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 300,
        "library generation took {elapsed:?} for {count} components"
    );
}

#[test]
fn adder_adds_sixteen_bits() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "ADDER", &[("size", "16")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    let mut rng: u64 = 0xDEADBEEFCAFE;
    for _ in 0..25 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (rng >> 10) & 0xFFFF;
        let b = (rng >> 30) & 0xFFFF;
        let cin = rng >> 63;
        sim.set_bus("I0", 16, a).unwrap();
        sim.set_bus("I1", 16, b).unwrap();
        sim.set_by_name("Cin", Logic::from_bool(cin == 1)).unwrap();
        sim.propagate();
        let sum = sim.bus("O", 16).unwrap();
        let cout = sim.get_by_name("Cout").unwrap().to_bool().unwrap() as u64;
        assert_eq!((cout << 16) | sum, a + b + cin);
    }
}

#[test]
fn incrementer_increments() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "INCREMENTER", &[("size", "6")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    for v in [0u64, 1, 31, 62, 63] {
        sim.set_bus("I", 6, v).unwrap();
        sim.set_by_name("EN", Logic::One).unwrap();
        sim.propagate();
        assert_eq!(sim.bus("O", 6).unwrap(), (v + 1) & 0x3F, "inc {v}");
        sim.set_by_name("EN", Logic::Zero).unwrap();
        sim.propagate();
        assert_eq!(sim.bus("O", 6).unwrap(), v, "pass-through {v}");
    }
}

#[test]
fn comparator_computes_all_relations() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "COMPARATOR", &[("size", "4")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    for (a, b) in [(3u64, 3u64), (5, 2), (2, 5), (15, 0), (0, 0), (7, 8)] {
        sim.set_bus("A", 4, a).unwrap();
        sim.set_bus("B", 4, b).unwrap();
        sim.propagate();
        let read = |s: &Simulator, n: &str| s.get_by_name(n).unwrap().to_bool().unwrap();
        assert_eq!(read(&sim, "OEQ"), a == b, "{a} EQ {b}");
        assert_eq!(read(&sim, "ONEQ"), a != b, "{a} NEQ {b}");
        assert_eq!(read(&sim, "OGT"), a > b, "{a} GT {b}");
        assert_eq!(read(&sim, "OGEQ"), a >= b, "{a} GE {b}");
        assert_eq!(read(&sim, "OLT"), a < b, "{a} LT {b}");
        assert_eq!(read(&sim, "OLEQ"), a <= b, "{a} LE {b}");
    }
}

#[test]
fn mux_selects() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "MUX", &[("size", "8")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    sim.set_bus("I0", 8, 0xA5).unwrap();
    sim.set_bus("I1", 8, 0x3C).unwrap();
    sim.set_by_name("S", Logic::Zero).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), 0xA5);
    sim.set_by_name("S", Logic::One).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), 0x3C);
}

#[test]
fn decoder_is_one_hot_and_encoder_inverts_it() {
    let mut icdb = Icdb::new();
    let dec = generate(&mut icdb, "DECODER", &[("n", "3")]);
    let inst = icdb.instance(&dec).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    for v in 0..8u64 {
        sim.set_bus("I", 3, v).unwrap();
        sim.set_by_name("EN", Logic::One).unwrap();
        sim.propagate();
        assert_eq!(sim.bus("O", 8).unwrap(), 1 << v, "decode {v}");
    }
    sim.set_by_name("EN", Logic::Zero).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), 0, "disabled decoder");

    let enc = generate(&mut icdb, "ENCODER", &[("n", "3")]);
    let inst = icdb.instance(&enc).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    for v in 0..8u64 {
        sim.set_bus("I", 8, 1 << v).unwrap();
        sim.propagate();
        assert_eq!(sim.bus("O", 3).unwrap(), v, "encode one-hot {v}");
    }
}

#[test]
fn logic_unit_implements_its_connection_table() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "LOGIC_UNIT", &[("size", "4")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    let (a, b) = (0b1100u64, 0b1010u64);
    sim.set_bus("A", 4, a).unwrap();
    sim.set_bus("B", 4, b).unwrap();
    // (C1, C0) → function, as published in the connection table.
    let cases = [
        ((0u64, 0u64), a & b),
        ((0, 1), a | b),
        ((1, 0), a ^ b),
        ((1, 1), !a & 0xF),
    ];
    for ((c1, c0), expect) in cases {
        sim.set_by_name("C1", Logic::from_bool(c1 == 1)).unwrap();
        sim.set_by_name("C0", Logic::from_bool(c0 == 1)).unwrap();
        sim.propagate();
        assert_eq!(sim.bus("O", 4).unwrap(), expect, "C1={c1} C0={c0}");
    }
}

#[test]
fn alu_arithmetic_and_logic_modes() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "ALU", &[("size", "8")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    let (a, b) = (0x5Du64, 0x2Fu64);
    sim.set_bus("A", 8, a).unwrap();
    sim.set_bus("B", 8, b).unwrap();
    sim.set_by_name("C0", Logic::Zero).unwrap();
    sim.set_by_name("C1", Logic::Zero).unwrap();

    sim.set_by_name("MODE", Logic::Zero).unwrap();
    sim.set_by_name("ASCTL", Logic::Zero).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), (a + b) & 0xFF, "ADD");

    sim.set_by_name("ASCTL", Logic::One).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), a.wrapping_sub(b) & 0xFF, "SUB");

    sim.set_by_name("MODE", Logic::One).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), a & b, "AND");

    sim.set_by_name("C0", Logic::One).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), a | b, "OR");

    sim.set_by_name("C0", Logic::Zero).unwrap();
    sim.set_by_name("C1", Logic::One).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 8).unwrap(), a ^ b, "XOR");
}

#[test]
fn register_loads_and_holds() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "REGISTER", &[("size", "8")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    sim.set_by_name("CLK", Logic::Zero).unwrap();
    sim.set_bus("D", 8, 0x77).unwrap();
    sim.set_by_name("LOAD", Logic::One).unwrap();
    sim.pulse("CLK").unwrap();
    assert_eq!(sim.bus("Q", 8).unwrap(), 0x77, "loaded");
    sim.set_bus("D", 8, 0x11).unwrap();
    sim.set_by_name("LOAD", Logic::Zero).unwrap();
    sim.pulse("CLK").unwrap();
    assert_eq!(sim.bus("Q", 8).unwrap(), 0x77, "held");
}

#[test]
fn shift_register_shifts_serially() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "SHIFT_REGISTER", &[("size", "4")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    sim.set_by_name("CLK", Logic::Zero).unwrap();
    sim.set_bus("D", 4, 0b0001).unwrap();
    sim.set_by_name("LOAD", Logic::One).unwrap();
    sim.set_by_name("SIN", Logic::Zero).unwrap();
    sim.pulse("CLK").unwrap();
    assert_eq!(sim.bus("Q", 4).unwrap(), 0b0001);
    sim.set_by_name("LOAD", Logic::Zero).unwrap();
    for expect in [0b0010u64, 0b0100, 0b1000] {
        sim.pulse("CLK").unwrap();
        assert_eq!(sim.bus("Q", 4).unwrap(), expect, "shifting");
    }
    assert_eq!(
        sim.get_by_name("SOUT").unwrap(),
        Logic::One,
        "MSB reaches serial out"
    );
}

#[test]
fn shifter_shifts_by_fixed_distance() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "SHL0", &[("size", "8"), ("shift_distance", "3")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    for v in [0b1u64, 0b1011, 0xFF] {
        sim.set_bus("I", 8, v).unwrap();
        sim.propagate();
        assert_eq!(sim.bus("O", 8).unwrap(), (v << 3) & 0xFF, "shl3 {v:#x}");
    }
}

#[test]
fn tristate_driver_floats_when_disabled() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "TRISTATE_DRIVER", &[("size", "2")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    sim.set_bus("D", 2, 0b11).unwrap();
    sim.set_by_name("EN", Logic::One).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("O", 2).unwrap(), 0b11);
    sim.set_by_name("EN", Logic::Zero).unwrap();
    sim.propagate();
    assert_eq!(sim.get_by_name("O[0]").unwrap(), Logic::Z, "floats");
    assert_eq!(sim.get_by_name("O[1]").unwrap(), Logic::Z, "floats");
}

#[test]
fn parity_and_wide_gates() {
    let mut icdb = Icdb::new();
    let par = generate(&mut icdb, "PARITY", &[("size", "9")]);
    let inst = icdb.instance(&par).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    for v in [0u64, 1, 0b101010101, 0x1FF] {
        sim.set_bus("I", 9, v).unwrap();
        sim.propagate();
        let expect = (v.count_ones() % 2) == 1;
        assert_eq!(
            sim.get_by_name("O").unwrap(),
            Logic::from_bool(expect),
            "parity of {v:#b}"
        );
    }

    let and = generate(&mut icdb, "AND_GATE", &[("size", "7")]);
    let inst = icdb.instance(&and).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    sim.set_bus("I0", 7, 0x7F).unwrap();
    sim.propagate();
    assert_eq!(sim.get_by_name("O").unwrap(), Logic::One);
    sim.set_bus("I0", 7, 0x7E).unwrap();
    sim.propagate();
    assert_eq!(sim.get_by_name("O").unwrap(), Logic::Zero);
}

#[test]
fn vhdl_views_emit_and_reparse() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "ADDER", &[("size", "4")]);
    let netlist_text = icdb.vhdl_netlist(&name).unwrap();
    let head = icdb.vhdl_head(&name).unwrap();
    assert!(head.contains("entity adder is"));
    let parsed = icdb::vhdl::parse_netlist(&netlist_text).unwrap();
    assert_eq!(
        parsed.instances.len(),
        icdb.instance(&name).unwrap().netlist.gates.len()
    );
}

#[test]
fn cluster_request_from_vhdl_netlist() {
    // The partitioner's flow (Appendix B §6.3): wrap two generated
    // instances in a VHDL netlist, request the cluster, get estimates.
    let mut icdb = Icdb::new();
    let a = generate(&mut icdb, "REGISTER", &[("size", "2")]);
    let b = generate(&mut icdb, "INCREMENTER", &[("size", "2")]);
    let cluster = format!(
        "entity cluster_1 is
           port ( clk : in bit; load : in bit; en : in bit;
                  d0, d1 : in bit; o0, o1 : out bit; co : out bit );
         end cluster_1;
         architecture structural of cluster_1 is
           signal q0, q1 : bit;
         begin
           u_reg : {a} port map (CLK => clk, LOAD => load,
                                 D_0x => d0, D_1x => d1,
                                 Q_0x => q0, Q_1x => q1);
           u_inc : {b} port map (EN => en, I_0x => q0, I_1x => q1,
                                 O_0x => o0, O_1x => o1, Cout => co);
         end structural;"
    );
    let name = icdb
        .request_component(&icdb::ComponentRequest::from_vhdl(cluster))
        .unwrap();
    let inst = icdb.instance(&name).unwrap();
    let expected = icdb.instance(&a).unwrap().netlist.gates.len()
        + icdb.instance(&b).unwrap().netlist.gates.len();
    assert_eq!(
        inst.netlist.gates.len(),
        expected,
        "cluster merges both netlists"
    );
    assert!(
        inst.report.clock_width > 0.0,
        "cluster has sequential timing"
    );
    assert!(!inst.shape.alternatives.is_empty());
}

#[test]
fn control_logic_from_inline_iif() {
    // The control-logic generation path (§3.2.2, specification type 3).
    let mut icdb = Icdb::new();
    let src = "
NAME: CTRL;
INORDER: CLK, RST, OPA, OPB;
OUTORDER: RD, WR;
PIIFVARIABLE: S;
{
  S = (OPA (+) S) @(~r CLK) ~a(0/RST);
  RD = S * OPB;
  WR = !S * OPB;
}";
    let name = icdb
        .request_component(&icdb::ComponentRequest::from_iif(src))
        .unwrap();
    let inst = icdb.instance(&name).unwrap();
    assert_eq!(inst.implementation, "iif");
    assert!(inst.report.clock_width > 0.0);
    assert!(icdb.delay_string(&name).unwrap().contains("SD OPA"));
}

#[test]
fn carry_select_adder_adds_and_is_faster_than_ripple() {
    let mut icdb = Icdb::new();
    let csel = generate(&mut icdb, "CSEL_ADDER", &[("size", "16"), ("block", "4")]);
    let ripple = generate(&mut icdb, "ADDER", &[("size", "16")]);
    // Behavioral check.
    let inst = icdb.instance(&csel).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    let mut rng: u64 = 0x1234_5678_9ABC;
    for _ in 0..20 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (rng >> 5) & 0xFFFF;
        let b = (rng >> 25) & 0xFFFF;
        let cin = rng >> 63;
        sim.set_bus("I0", 16, a).unwrap();
        sim.set_bus("I1", 16, b).unwrap();
        sim.set_by_name("Cin", Logic::from_bool(cin == 1)).unwrap();
        sim.propagate();
        let sum = sim.bus("O", 16).unwrap();
        let cout = sim.get_by_name("Cout").unwrap().to_bool().unwrap() as u64;
        assert_eq!((cout << 16) | sum, a + b + cin, "{a}+{b}+{cin}");
    }
    // The architectural point of carry select: shorter critical path,
    // larger area than the plain ripple adder.
    let c = icdb.instance(&csel).unwrap();
    let r = icdb.instance(&ripple).unwrap();
    let c_delay = c.report.output_delay("Cout").unwrap();
    let r_delay = r.report.output_delay("Cout").unwrap();
    assert!(
        c_delay < r_delay,
        "carry-select Cout {c_delay:.1} ns must beat ripple {r_delay:.1} ns"
    );
    assert!(c.area() > r.area(), "speed is bought with area");
}

#[test]
fn barrel_rotator_rotates() {
    let mut icdb = Icdb::new();
    let name = generate(
        &mut icdb,
        "BARREL_ROTATOR",
        &[("size", "8"), ("stages", "3")],
    );
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    let value = 0b1000_0110u64;
    for amount in 0..8u64 {
        sim.set_bus("I", 8, value).unwrap();
        sim.set_bus("S", 3, amount).unwrap();
        sim.propagate();
        let got = sim.bus("O", 8).unwrap();
        let expect = ((value << amount) | (value >> (8 - amount).min(63))) & 0xFF;
        let expect = if amount == 0 { value } else { expect };
        assert_eq!(got, expect, "rotl {value:#010b} by {amount}");
    }
}

#[test]
fn register_file_writes_and_reads_all_words() {
    let mut icdb = Icdb::new();
    let name = generate(&mut icdb, "REGISTER_FILE", &[("size", "4"), ("abits", "2")]);
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    sim.set_by_name("CLK", Logic::Zero).unwrap();
    // Write distinct values to the four words.
    for w in 0..4u64 {
        sim.set_bus("WA", 2, w).unwrap();
        sim.set_bus("D", 4, 0x9 ^ (w * 3)).unwrap();
        sim.set_by_name("WE", Logic::One).unwrap();
        sim.pulse("CLK").unwrap();
    }
    sim.set_by_name("WE", Logic::Zero).unwrap();
    // Read them back through the combinational read port.
    for w in 0..4u64 {
        sim.set_bus("RA", 2, w).unwrap();
        sim.propagate();
        assert_eq!(sim.bus("Q", 4).unwrap(), (0x9 ^ (w * 3)) & 0xF, "word {w}");
    }
    // A write with WE low must not disturb the stored words.
    sim.set_bus("WA", 2, 1).unwrap();
    sim.set_bus("D", 4, 0xF).unwrap();
    sim.pulse("CLK").unwrap();
    sim.set_bus("RA", 2, 1).unwrap();
    sim.propagate();
    assert_eq!(sim.bus("Q", 4).unwrap(), (0x9 ^ 3) & 0xF, "WE low holds");
}
