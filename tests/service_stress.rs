//! Multi-session stress test (the CI `concurrency-smoke` workload):
//! 8 client threads hammer one shared [`IcdbService`] with ≥1000 mixed
//! warm / cold / knowledge-acquisition requests, and every session's
//! transcript must be **byte-identical** to replaying the same operation
//! script on a dedicated single-caller [`Icdb`] — concurrency must be
//! completely invisible to each client.

use icdb::cql::CqlArg;
use icdb::{ComponentRequest, Icdb, IcdbService, Session};
use std::sync::Arc;

const SESSIONS: usize = 8;
// ~3 of every 5 scripted ops are generation/acquisition requests, so 220
// ops per session keeps the total request count comfortably above 1000
// (asserted below).
const OPS_PER_SESSION: usize = 220;

/// One scripted client operation. Scripts are deterministic functions of
/// the session index, so the same script can replay on a solo server.
#[derive(Debug, Clone)]
enum Op {
    /// Generate a component (cold or warm depending on history).
    Request(Box<ComponentRequest>),
    /// Query the delay string of the n-th instance created so far.
    Delay(usize),
    /// Query the structural VHDL of the n-th instance created so far.
    Vhdl(usize),
    /// Query the delay of the n-th instance through CQL (`instance_query`).
    CqlDelay(usize),
    /// Acquire knowledge: insert a uniquely named implementation.
    Acquire(String),
}

/// A small parameterized AND array used for knowledge-acquisition traffic.
fn acquired_iif(name: &str) -> String {
    format!(
        "\nNAME: {name};\nPARAMETER: size;\nINORDER: A[size], B[size];\n\
         OUTORDER: O[size];\nVARIABLE: i;\n{{\n  #for(i=0;i<size;i++)\n    \
         O[i] = A[i] * B[i];\n}}"
    )
}

/// The deterministic operation script of one session. Mixes:
/// * shared warm traffic (every session issues the same counter request),
/// * per-session cold traffic (sizes derived from the session index),
/// * knowledge acquisition (a uniquely named implementation per session)
///   followed by requests against it,
/// * read queries (direct and through CQL).
fn script(session: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(OPS_PER_SESSION);
    let counter = ComponentRequest::by_component("counter").attribute("size", "3");
    let adder = |size: usize| {
        ComponentRequest::by_implementation("ADDER").attribute("size", size.to_string())
    };
    let acquired_name = format!("STRESS_T{session}");

    ops.push(Op::Request(Box::new(counter.clone()))); // shared: cold once globally
    ops.push(Op::Request(Box::new(adder(2 + session % 4)))); // per-session flavor
    ops.push(Op::Delay(0));
    ops.push(Op::Acquire(acquired_name.clone()));
    ops.push(Op::Request(Box::new(
        ComponentRequest::by_implementation(&acquired_name).attribute("size", "3"),
    )));
    ops.push(Op::Vhdl(2));
    ops.push(Op::CqlDelay(1));

    let mut i = 0usize;
    while ops.len() < OPS_PER_SESSION {
        match i % 5 {
            0 => ops.push(Op::Request(Box::new(counter.clone()))), // warm repeat
            1 => ops.push(Op::Request(Box::new(adder(2 + (session + i) % 5)))),
            2 => ops.push(Op::Delay(i % 3)),
            3 => ops.push(Op::Request(Box::new(
                ComponentRequest::by_implementation(&acquired_name)
                    .attribute("size", (2 + i % 3).to_string()),
            ))),
            _ => ops.push(Op::CqlDelay(i % 3)),
        }
        i += 1;
    }
    ops
}

/// How many `Request`/`Acquire` ops (the "requests" of the acceptance
/// criterion) a script contains.
fn request_count(ops: &[Op]) -> usize {
    ops.iter()
        .filter(|op| matches!(op, Op::Request(_) | Op::Acquire(_)))
        .count()
}

/// Runs a script against a live session, returning the full transcript.
fn run_on_session(session: &Session, ops: &[Op]) -> Vec<String> {
    let mut transcript = Vec::with_capacity(ops.len());
    let mut created: Vec<String> = Vec::new();
    for op in ops {
        match op {
            Op::Request(req) => {
                let name = session.request_component(req).expect("request");
                created.push(name.clone());
                transcript.push(format!("request -> {name}"));
            }
            Op::Delay(n) => {
                let name = &created[*n % created.len()];
                transcript.push(format!(
                    "delay {name} -> {}",
                    session.delay_string(name).expect("delay")
                ));
            }
            Op::Vhdl(n) => {
                let name = &created[*n % created.len()];
                transcript.push(format!(
                    "vhdl {name} -> {}",
                    session.vhdl_netlist(name).expect("vhdl")
                ));
            }
            Op::CqlDelay(n) => {
                let name = created[*n % created.len()].clone();
                let mut args = vec![CqlArg::InStr(name.clone()), CqlArg::OutStr(None)];
                session
                    .execute(
                        "command:instance_query; generated_component:%s; delay:?s",
                        &mut args,
                    )
                    .expect("cql");
                let CqlArg::OutStr(Some(delay)) = &args[1] else {
                    panic!("no delay output");
                };
                transcript.push(format!("cql_delay {name} -> {delay}"));
            }
            Op::Acquire(name) => {
                let inserted = session
                    .insert_implementation(
                        &acquired_iif(name),
                        "Logic_unit",
                        &["AND"],
                        &[("size", 4)],
                        None,
                        "stress-acquired",
                    )
                    .expect("acquire");
                transcript.push(format!("acquire -> {inserted}"));
            }
        }
    }
    transcript
}

/// Replays the same script on a dedicated single-caller server.
fn run_on_solo(icdb: &mut Icdb, ops: &[Op]) -> Vec<String> {
    let mut transcript = Vec::with_capacity(ops.len());
    let mut created: Vec<String> = Vec::new();
    for op in ops {
        match op {
            Op::Request(req) => {
                let name = icdb.request_component(req).expect("request");
                created.push(name.clone());
                transcript.push(format!("request -> {name}"));
            }
            Op::Delay(n) => {
                let name = &created[*n % created.len()];
                transcript.push(format!(
                    "delay {name} -> {}",
                    icdb.delay_string(name).expect("delay")
                ));
            }
            Op::Vhdl(n) => {
                let name = &created[*n % created.len()];
                transcript.push(format!(
                    "vhdl {name} -> {}",
                    icdb.vhdl_netlist(name).expect("vhdl")
                ));
            }
            Op::CqlDelay(n) => {
                let name = created[*n % created.len()].clone();
                let mut args = vec![CqlArg::InStr(name.clone()), CqlArg::OutStr(None)];
                icdb.execute(
                    "command:instance_query; generated_component:%s; delay:?s",
                    &mut args,
                )
                .expect("cql");
                let CqlArg::OutStr(Some(delay)) = &args[1] else {
                    panic!("no delay output");
                };
                transcript.push(format!("cql_delay {name} -> {delay}"));
            }
            Op::Acquire(name) => {
                let inserted = icdb
                    .insert_implementation(
                        &acquired_iif(name),
                        "Logic_unit",
                        &["AND"],
                        &[("size", 4)],
                        None,
                        "stress-acquired",
                    )
                    .expect("acquire");
                transcript.push(format!("acquire -> {inserted}"));
            }
        }
    }
    transcript
}

#[test]
fn concurrent_sessions_match_sequential_replay() {
    let service = Arc::new(IcdbService::new());
    let scripts: Vec<Vec<Op>> = (0..SESSIONS).map(script).collect();
    let total_requests: usize = scripts.iter().map(|s| request_count(s)).sum();
    assert!(
        total_requests >= 1000,
        "workload too small: {total_requests} requests"
    );

    // 8 client threads, each with its own session, all at once.
    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|ops| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let session = service.open_session();
                    run_on_session(&session, ops)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });

    // The shared cache must have answered every generation lookup
    // (hits + misses == cacheable requests; acquisitions are not lookups).
    // A request re-prepares (one extra lookup) when another session's
    // acquisition lands between its shared-lock prepare and its journaled
    // install — the event path refuses to install a payload generated
    // under a stale knowledge base, so live state always matches what
    // recovery replay would rebuild. Hence: at least one lookup per
    // request, at most two.
    let stats = service.cache_stats();
    let generation_requests: usize = scripts
        .iter()
        .map(|s| s.iter().filter(|op| matches!(op, Op::Request(_))).count())
        .sum();
    let lookups = stats.result.lookups();
    assert!(
        lookups >= generation_requests as u64 && lookups <= 2 * generation_requests as u64,
        "expected {generation_requests} <= lookups <= {}: {stats:?}",
        2 * generation_requests
    );
    assert!(
        stats.result.hits > stats.result.misses,
        "warm traffic dominates: {stats:?}"
    );

    // Sequential replay: each session's transcript must be byte-identical
    // to a dedicated single-caller server running the same script.
    for (i, ops) in scripts.iter().enumerate() {
        let mut solo = Icdb::new();
        let expected = run_on_solo(&mut solo, ops);
        assert_eq!(
            transcripts[i], expected,
            "session {i} diverged from sequential replay"
        );
    }
}

#[test]
fn concurrent_batches_share_the_service() {
    // Batch generation through sessions: prepares run under the shared
    // lock on every thread, installs serialize, results stay per-session
    // deterministic.
    let service = Arc::new(IcdbService::new());
    let requests: Vec<ComponentRequest> = (2..6)
        .map(|size| {
            ComponentRequest::by_implementation("ADDER").attribute("size", size.to_string())
        })
        .collect();

    let names: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                let requests = requests.clone();
                scope.spawn(move || {
                    let session = service.open_session();
                    session.request_components_batch(&requests, 2).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut solo = Icdb::new();
    let expected = solo.request_components_batch(&requests, 1).unwrap();
    for batch in names {
        assert_eq!(batch, expected);
    }
}
