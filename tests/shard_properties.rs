//! Shard property suite: the sharded commit path must be invisible.
//!
//! Namespaces map onto lock shards (`NsId % 16`), so sessions in
//! different namespaces commit concurrently. The service's contract is
//! that this concurrency never shows: a random mutation script per
//! namespace, run with all sessions racing across shards, must produce
//! the exact same per-session transcript as the same scripts replayed
//! one namespace at a time — the §3.3 string comparator from the
//! recovery suite, applied per session. A separate test pins the one
//! deliberate cross-shard channel: knowledge acquisition in *any*
//! namespace invalidates warm generation-cache hits in *all* of them.

use icdb::cql::CqlArg;
use icdb::{ComponentRequest, IcdbService, Session};
use proptest::prelude::*;
use std::sync::{Arc, Barrier, Mutex};

/// One step of a per-session script, over the session API.
#[derive(Debug, Clone)]
enum Op {
    /// Generate a component (kind, size).
    Request(u8, u32),
    /// Delay + shape of the i-th created instance (if any).
    Query(u8),
    /// VHDL entity head of the i-th created instance (if any).
    Vhdl(u8),
    /// Regenerate the i-th instance's layout and record the CIF length.
    Layout(u8),
    /// start_a_design + transaction, one request, keep-or-drop, end.
    Design(u8, bool),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 2u32..5).prop_map(|(k, s)| Op::Request(k, s)),
        (0u8..4).prop_map(Op::Query),
        (0u8..4).prop_map(Op::Vhdl),
        (0u8..4).prop_map(Op::Layout),
        (0u8..3, any::<bool>()).prop_map(|(k, keep)| Op::Design(k, keep)),
    ]
}

fn request_of(kind: u8, size: u32) -> ComponentRequest {
    match kind % 4 {
        0 => ComponentRequest::by_component("counter").attribute("size", size.to_string()),
        1 => ComponentRequest::by_implementation("ADDER").attribute("size", size.to_string()),
        2 => ComponentRequest::by_implementation("REGISTER")
            .attribute("size", size.to_string())
            .clock_width(30.0),
        _ => ComponentRequest::by_implementation("MUX").attribute("size", size.to_string()),
    }
}

/// Runs one script on a session and returns its transcript: every
/// observable output (names, §3.3 strings, errors) in order, closed by
/// the session's full final state. Script index `tag` keeps design names
/// distinct across sessions.
fn run_script(session: &Session, tag: usize, ops: &[Op]) -> Vec<String> {
    let mut transcript = Vec::new();
    let mut created: Vec<String> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Request(kind, size) => match session.request_component(&request_of(*kind, *size)) {
                Ok(name) => {
                    transcript.push(name.clone());
                    created.push(name);
                }
                Err(e) => transcript.push(format!("ERR {e}")),
            },
            Op::Query(i) => {
                if let Some(name) = created.get(*i as usize % created.len().max(1)) {
                    transcript.push(
                        session
                            .delay_string(name)
                            .unwrap_or_else(|e| format!("ERR {e}")),
                    );
                    transcript.push(
                        session
                            .shape_string(name)
                            .unwrap_or_else(|e| format!("ERR {e}")),
                    );
                }
            }
            Op::Vhdl(i) => {
                if let Some(name) = created.get(*i as usize % created.len().max(1)) {
                    transcript.push(
                        session
                            .vhdl_head(name)
                            .unwrap_or_else(|e| format!("ERR {e}")),
                    );
                }
            }
            Op::Layout(i) => {
                if let Some(name) = created.get(*i as usize % created.len().max(1)) {
                    transcript.push(match session.generate_layout(name, None, None) {
                        Ok(cif) => format!("cif {}", cif.len()),
                        Err(e) => format!("ERR {e}"),
                    });
                }
            }
            Op::Design(kind, keep) => {
                let design = format!("design{tag}_{i}");
                if session.start_design(&design).is_err() {
                    transcript.push("ERR start_design".to_string());
                    continue;
                }
                let _ = session.start_transaction(&design);
                if let Ok(name) = session.request_component(&request_of(*kind, 3)) {
                    transcript.push(name.clone());
                    if *keep {
                        let _ = session.put_in_component_list(&design, &name);
                        created.push(name);
                    }
                }
                transcript.push(format!("end {:?}", session.end_transaction(&design).ok()));
            }
        }
    }
    // Final state: every instance with its §3.3 strings — the same
    // comparator shape the recovery suite uses per namespace.
    transcript.push("== final".to_string());
    for name in session.instance_names() {
        transcript.push(name.clone());
        transcript.push(session.delay_string(&name).unwrap_or_default());
        transcript.push(session.shape_string(&name).unwrap_or_default());
        transcript.push(session.vhdl_head(&name).unwrap_or_default());
    }
    transcript
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Concurrent-across-shards ≡ sequential-per-namespace: four random
    /// scripts race on one service (distinct namespaces → distinct
    /// shards), then replay one at a time on a fresh service; every
    /// session's transcript must be byte-identical.
    #[test]
    fn concurrent_shards_match_sequential_replay(
        scripts in proptest::collection::vec(proptest::collection::vec(arb_op(), 1..6), 4),
    ) {
        // Concurrent run: all sessions race through their scripts.
        let service = IcdbService::shared();
        let sessions: Vec<Session> = scripts.iter().map(|_| service.open_session()).collect();
        let results: Mutex<Vec<(usize, Vec<String>)>> = Mutex::new(Vec::new());
        let barrier = Arc::new(Barrier::new(scripts.len()));
        std::thread::scope(|scope| {
            for (tag, (session, ops)) in sessions.iter().zip(&scripts).enumerate() {
                let barrier = Arc::clone(&barrier);
                let results = &results;
                scope.spawn(move || {
                    barrier.wait();
                    let transcript = run_script(session, tag, ops);
                    results.lock().unwrap().push((tag, transcript));
                });
            }
        });
        let mut concurrent = results.into_inner().unwrap();
        concurrent.sort_by_key(|(tag, _)| *tag);

        // Sequential replay: same scripts, same namespace ids (sessions
        // opened in the same order), one script at a time.
        let solo = IcdbService::shared();
        let solo_sessions: Vec<Session> = scripts.iter().map(|_| solo.open_session()).collect();
        for ((tag, transcript), (session, ops)) in
            concurrent.iter().zip(solo_sessions.iter().zip(&scripts))
        {
            let sequential = run_script(session, *tag, ops);
            prop_assert_eq!(
                transcript,
                &sequential,
                "session {} diverged between concurrent and sequential runs",
                tag
            );
        }
    }
}

/// The deliberate cross-shard channel: knowledge acquisition bumps the
/// library version, and because cache keys embed that version, *every*
/// namespace's warm entries go cold at once — no shard keeps serving a
/// stale generation.
#[test]
fn knowledge_acquisition_invalidates_warm_hits_in_every_namespace() {
    let service = IcdbService::shared();
    let a = service.open_session();
    let b = service.open_session();
    let c = service.open_session();
    let req = ComponentRequest::by_component("counter").attribute("size", "5");

    // Cold in A, then warm across namespaces in B.
    a.request_component(&req).unwrap();
    let cold = service.cache_stats().result;
    b.request_component(&req).unwrap();
    let warm = service.cache_stats().result;
    assert_eq!(warm.hits, cold.hits + 1, "B must hit A's cached generation");
    assert_eq!(warm.misses, cold.misses);

    // Knowledge acquisition through C's shard…
    c.insert_implementation(
        "NAME: SHARDPROP_NAND; INORDER: A, B; OUTORDER: O; { O = !(A * B); }",
        "Logic_unit",
        &["NAND"],
        &[],
        None,
        "shard-prop acquired implementation",
    )
    .unwrap();

    // …must cold-start the next request in ANY namespace (A's shard)…
    a.request_component(&req).unwrap();
    let invalidated = service.cache_stats().result;
    assert_eq!(
        invalidated.hits, warm.hits,
        "a warm hit after acquisition would serve a stale generation"
    );
    assert_eq!(invalidated.misses, warm.misses + 1);

    // …and the regenerated entry re-warms the cache for everyone else.
    b.request_component(&req).unwrap();
    let rewarmed = service.cache_stats().result;
    assert_eq!(rewarmed.hits, invalidated.hits + 1);
    assert_eq!(rewarmed.misses, invalidated.misses);
}

/// Same invalidation, observed through the wire-visible `cache_query`
/// CQL command rather than the embedded stats struct.
#[test]
fn cache_query_reflects_cross_namespace_invalidation() {
    let service = IcdbService::shared();
    let a = service.open_session();
    let b = service.open_session();
    let req = ComponentRequest::by_component("counter").attribute("size", "4");
    a.request_component(&req).unwrap();
    a.request_component(&req).unwrap(); // warm within A
    b.insert_implementation(
        "NAME: SHARDPROP_NOR; INORDER: A, B; OUTORDER: O; { O = !(A + B); }",
        "Logic_unit",
        &["NOR"],
        &[],
        None,
        "shard-prop second acquired implementation",
    )
    .unwrap();
    a.request_component(&req).unwrap(); // must regenerate
    let mut args = vec![CqlArg::OutInt(None), CqlArg::OutInt(None)];
    a.execute(
        "command:cache_query; layer:result; hits:?d; misses:?d",
        &mut args,
    )
    .unwrap();
    assert_eq!(args[0], CqlArg::OutInt(Some(1)), "exactly one warm hit");
    assert_eq!(
        args[1],
        CqlArg::OutInt(Some(2)),
        "cold start + post-acquisition regeneration"
    );
}
