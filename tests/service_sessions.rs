//! Session-isolation contract of the concurrent service layer: sessions
//! get independent instance namespaces (names, counters, designs) over
//! one shared knowledge base, and knowledge mutations by any session
//! invalidate warm cache hits for all sessions at once.

use icdb::{ComponentRequest, Icdb, IcdbService, NsId};

const STRESS_AND: &str = "
NAME: SESSION_AND;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: O[size];
VARIABLE: i;
{
  #for(i=0;i<size;i++)
    O[i] = A[i] * B[i];
}";

#[test]
fn sessions_get_independent_instance_names() {
    let service = IcdbService::shared();
    let a = service.open_session();
    let b = service.open_session();
    let req = ComponentRequest::by_component("counter").attribute("size", "4");

    // Both sessions start their naming counters at zero: same names,
    // different instances.
    assert_eq!(a.request_component(&req).unwrap(), "counter$1");
    assert_eq!(b.request_component(&req).unwrap(), "counter$1");
    assert_eq!(a.request_component(&req).unwrap(), "counter$2");

    assert_eq!(a.instance_names(), vec!["counter$1", "counter$2"]);
    assert_eq!(b.instance_names(), vec!["counter$1"]);

    // The three requests shared one cold generation.
    let stats = service.cache_stats();
    assert_eq!(stats.result.misses, 1, "{stats:?}");
    assert_eq!(stats.result.hits, 2, "{stats:?}");

    // Identical payloads behind the distinct instances.
    assert_eq!(
        a.delay_string("counter$1").unwrap(),
        b.delay_string("counter$1").unwrap()
    );
}

#[test]
fn knowledge_mutation_invalidates_warm_hits_for_all_sessions() {
    let service = IcdbService::shared();
    let a = service.open_session();
    let b = service.open_session();
    let req = ComponentRequest::by_implementation("ADDER").attribute("size", "4");

    a.request_component(&req).unwrap(); // cold
    b.request_component(&req).unwrap(); // warm
    let before = service.cache_stats().result;
    assert_eq!((before.misses, before.hits), (1, 1));

    // Session B acquires knowledge: the library version bumps, so every
    // session's next identical request misses — never a stale hit.
    b.insert_implementation(STRESS_AND, "Logic_unit", &["AND"], &[("size", 4)], None, "")
        .unwrap();
    a.request_component(&req).unwrap();
    b.request_component(&req).unwrap();
    let after = service.cache_stats().result;
    assert_eq!(after.misses, 2, "first post-mutation request re-generates");
    assert_eq!(after.hits, 2, "second one warms against the new version");

    // The acquired implementation is visible to *both* sessions.
    let new_req = ComponentRequest::by_implementation("SESSION_AND").attribute("size", "3");
    assert_eq!(a.request_component(&new_req).unwrap(), "session_and$3");
    assert_eq!(b.request_component(&new_req).unwrap(), "session_and$3");
}

#[test]
fn design_transactions_are_per_session() {
    let service = IcdbService::shared();
    let a = service.open_session();
    let b = service.open_session();

    // Both sessions can hold an open transaction at once — the paper's
    // one-active-transaction rule is scoped per session.
    a.start_design("cpu").unwrap();
    b.start_design("cpu").unwrap(); // same design name, different namespace
    a.start_transaction("cpu").unwrap();
    b.start_transaction("cpu").unwrap();

    let keep = a
        .request_component(&ComponentRequest::by_implementation("ADDER"))
        .unwrap();
    let drop = a
        .request_component(&ComponentRequest::by_implementation("REGISTER"))
        .unwrap();
    let b_inst = b
        .request_component(&ComponentRequest::by_implementation("REGISTER"))
        .unwrap();
    a.put_in_component_list("cpu", &keep).unwrap();

    // Ending A's transaction deletes only A's unlisted instances.
    assert_eq!(a.end_transaction("cpu").unwrap(), 1);
    assert!(a.has_instance(&keep));
    assert!(!a.has_instance(&drop));
    assert!(b.has_instance(&b_inst), "B's transaction is untouched");
    // B never listed its instance, so ending B's transaction deletes it.
    assert_eq!(b.end_transaction("cpu").unwrap(), 1);
    assert!(!b.has_instance(&b_inst));
}

#[test]
fn closing_a_session_scrubs_shared_stores() {
    let service = IcdbService::shared();
    let a = service.open_session();
    let ns = a.ns();
    let name = a
        .request_component(&ComponentRequest::by_implementation("ADDER").attribute("size", "3"))
        .unwrap();
    a.cif_layout(&name).unwrap();

    // Session design data lives under a namespaced prefix in the shared
    // file store, and its relational row carries the scoped name.
    {
        let guard = service.read();
        let prefix = format!("s{}/instances/", ns.raw());
        assert!(!guard.files.list(&prefix).is_empty(), "views persisted");
        let rows = guard
            .db
            .query(&format!(
                "SELECT name FROM instances WHERE name = 's{}:{name}'",
                ns.raw()
            ))
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    let deleted = a.close();
    assert_eq!(deleted, 1);
    let guard = service.read();
    assert!(
        guard.files.list(&format!("s{}/", ns.raw())).is_empty(),
        "file views scrubbed"
    );
    let rows = guard
        .db
        .query(&format!(
            "SELECT name FROM instances WHERE name = 's{}:{name}'",
            ns.raw()
        ))
        .unwrap();
    assert!(rows.is_empty(), "relational row scrubbed");
}

#[test]
fn namespace_api_works_without_the_service_wrapper() {
    // The `_in` API is usable directly on an embedded Icdb too.
    let mut icdb = Icdb::new();
    let ns = icdb.create_namespace();
    assert_ne!(ns, NsId::ROOT);
    let req = ComponentRequest::by_component("counter").attribute("size", "3");
    let root_name = icdb.request_component(&req).unwrap();
    let ns_name = icdb.request_component_in(ns, &req).unwrap();
    assert_eq!(root_name, "counter$1");
    assert_eq!(ns_name, "counter$1");
    assert_eq!(
        icdb.delay_string(&root_name).unwrap(),
        icdb.delay_string_in(ns, &ns_name).unwrap()
    );
    assert_eq!(icdb.namespace_count(), 2);
    assert_eq!(icdb.drop_namespace(ns), 1);
    assert!(icdb.instance_in(ns, &ns_name).is_err());
    assert!(icdb.instance(&root_name).is_ok(), "root untouched");
}
