//! Every CQL interaction printed in the paper, run verbatim-equivalent
//! through `Icdb::execute` (experiment E11 of DESIGN.md). Garbled OCR
//! spellings are normalized to the underscore keyword forms the appendix
//! defines (`ICDB_components`, `generated_component`, …).

use icdb::cql::CqlArg;
use icdb::Icdb;

/// §3.2.1, first query: implementations for a five-bit up counter.
#[test]
fn component_query_for_counters() {
    let mut icdb = Icdb::new();
    let mut counters = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command: component_query;
         component :counter;
         function :(INC);
         attribute:(size:5);
         ICDB_components:?s[] ",
        &mut counters,
    )
    .unwrap();
    let CqlArg::OutStrList(Some(names)) = &counters[0] else {
        panic!()
    };
    assert!(!names.is_empty());
    assert!(names.iter().any(|n| n == "COUNTER"));
}

/// §3.2.1, second query: the functions of a returned implementation,
/// passed back in through a %s input slot.
#[test]
fn component_query_functions_of_component() {
    let mut icdb = Icdb::new();
    let mut args = vec![CqlArg::InStr("COUNTER".into()), CqlArg::OutStrList(None)];
    icdb.execute(
        "command: component_query;
         ICDB_components:%s;
         function:?s[]",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStrList(Some(functions)) = &args[1] else {
        panic!()
    };
    for f in ["INC", "DEC", "COUNTER", "STORAGE"] {
        assert!(
            functions.iter().any(|x| x == f),
            "missing {f} in {functions:?}"
        );
    }
}

/// §3.2.2: the five-bit counter request with clock width, comb-delay
/// constraint text and setup bound.
#[test]
fn request_component_with_constraints() {
    let mut icdb = Icdb::new();
    let c_delay = "rdelay Q[4] 10\nrdelay Q[3] 10\nrdelay Q[2] 10\n\
                   rdelay Q[1] 10\nrdelay Q[0] 10\n\
                   oload Q[4] 10\noload Q[3] 10\noload Q[2] 10\n\
                   oload Q[1] 10\noload Q[0] 10";
    let mut args = vec![CqlArg::InStr(c_delay.into()), CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component;
         component_name:counter;
         attribute:(size:5);
         function:(INC);
         clock_width:30;
         comb_delay:%s;
         set_up_time:30;
         generated_component:?s",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStr(Some(counter_ins)) = &args[1] else {
        panic!()
    };
    let inst = icdb.instance(counter_ins).unwrap();
    assert!(inst.report.clock_width <= 30.0, "CW constraint respected");
    for q in 0..5 {
        let wd = inst.report.output_delay(&format!("Q[{q}]")).unwrap();
        assert!(wd <= 10.0 + 1e-9, "rdelay Q[{q}] bound: {wd}");
    }
}

/// §3.3: the instance query for delay and shape function strings.
#[test]
fn instance_query_delay_and_shape() {
    let mut icdb = Icdb::new();
    let mut gen = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component; component_name:counter;
         attribute:(size:5,up_or_down:3,enable:1,load:1); generated_component:?s",
        &mut gen,
    )
    .unwrap();
    let CqlArg::OutStr(Some(counter_ins)) = gen.remove(0) else {
        panic!()
    };

    let mut args = vec![
        CqlArg::InStr(counter_ins),
        CqlArg::OutStr(None),
        CqlArg::OutStr(None),
    ];
    icdb.execute(
        "command:instance_query;
         generated_component:%s;
         delay:?s;
         shape_function:?s",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStr(Some(delay_s)) = &args[1] else {
        panic!()
    };
    let CqlArg::OutStr(Some(shape_s)) = &args[2] else {
        panic!()
    };
    // The paper's formats: `CW 29.0`, `WD Q[4] 8.5`, `SD DWUP 26.7` and
    // `Alternative=1 width=12000 height=48000`.
    assert!(delay_s.lines().any(|l| l.starts_with("CW ")), "{delay_s}");
    assert!(
        delay_s.lines().any(|l| l.starts_with("WD Q[4] ")),
        "{delay_s}"
    );
    assert!(
        delay_s.lines().any(|l| l.starts_with("SD DWUP ")),
        "{delay_s}"
    );
    assert!(
        shape_s
            .lines()
            .any(|l| l.starts_with("Alternative=1 width=")),
        "{shape_s}"
    );
}

/// §3.3: layout generation for an existing instance with a shape
/// alternative and pinned port positions.
#[test]
fn request_layout_with_port_positions() {
    let mut icdb = Icdb::new();
    let mut gen = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component; component_name:counter;
         attribute:(size:5,up_or_down:3,enable:1,load:1); generated_component:?s",
        &mut gen,
    )
    .unwrap();
    let CqlArg::OutStr(Some(counter_ins)) = gen.remove(0) else {
        panic!()
    };

    let pin_locs = "\
CLK left s1.0
D[0] top 10
D[1] top 20
D[2] top 30
D[3] top 40
D[4] top 50
LOAD left s2.0
DWUP left s3.0
ENA left s4.0
MINMAX right s2.0
RCLK right s3.0
Q[0] bottom 10
Q[1] bottom 20
Q[2] bottom 30
Q[3] bottom 40
Q[4] bottom 50
";
    let mut args = vec![
        CqlArg::InStr(counter_ins.clone()),
        CqlArg::InStr(pin_locs.into()),
        CqlArg::OutStr(None),
    ];
    icdb.execute(
        "command:request_component;
         instance:%s;
         alternative:3;
         port_position:%s;
         CIF_layout:?s",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStr(Some(cif)) = &args[2] else {
        panic!()
    };
    assert!(
        icdb::layout::cif_is_well_formed(cif),
        "CIF must be well-formed"
    );
    assert!(cif.contains("94 CLK "), "port label present");
    // Alternative 3 selects the third strip count of the shape function.
    let inst = icdb.instance(&counter_ins).unwrap();
    let expect_strips = inst.shape.alternatives[2].strips;
    assert_eq!(inst.layout.as_ref().unwrap().strips.len(), expect_strips);
}

/// §3.3: the VHDL netlist / head / connect query.
#[test]
fn instance_query_vhdl_and_connect() {
    let mut icdb = Icdb::new();
    let mut gen = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component; component_name:counter;
         attribute:(size:5,up_or_down:3,enable:1,load:1); generated_component:?s",
        &mut gen,
    )
    .unwrap();
    let CqlArg::OutStr(Some(counter_ins)) = gen.remove(0) else {
        panic!()
    };

    let mut args = vec![
        CqlArg::InStr(counter_ins),
        CqlArg::OutStr(None),
        CqlArg::OutStr(None),
        CqlArg::OutStr(None),
    ];
    icdb.execute(
        "command:instance_query;
         instance:%s;
         VHDL_net_list:?s;
         VHDL_head:?s;
         connect :?s",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStr(Some(netlist)) = &args[1] else {
        panic!()
    };
    let CqlArg::OutStr(Some(head)) = &args[2] else {
        panic!()
    };
    let CqlArg::OutStr(Some(connect)) = &args[3] else {
        panic!()
    };
    assert!(netlist.contains("architecture structural"));
    assert!(head.contains("entity counter is"));
    // §3.3 / §4.1: the INC invocation table.
    assert!(connect.contains("## function INC"), "{connect}");
    assert!(connect.contains("** DWUP 0"), "{connect}");
    assert!(connect.contains("** CLK 1 edge_trigger"), "{connect}");
}

/// Appendix B §4: the interactive adder/subtractor request and its
/// C-program twin with %s/%d input slots.
#[test]
fn request_fastest_adder_subtractor_both_forms() {
    let mut icdb = Icdb::new();
    // Interactive form (constants inline).
    let mut args = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component;
         component_name: Adder_Subtractor;
         size: 4;
         strategy: fastest;
         component_instance: ?s",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStr(Some(first)) = args.remove(0) else {
        panic!()
    };

    // C-program form (%s and %d slots).
    let mut args = vec![
        CqlArg::InStr("Adder_Subtractor".into()),
        CqlArg::InInt(4),
        CqlArg::OutStr(None),
    ];
    icdb.execute(
        "command:request_component;
         component_name: %s;
         size: %d;
         strategy: fastest;
         component_instance: ?s",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStr(Some(second)) = &args[2] else {
        panic!()
    };
    let a = icdb.instance(&first).unwrap();
    let b = icdb.instance(second).unwrap();
    assert_eq!(a.netlist.gates.len(), b.netlist.gates.len());
    assert_eq!(a.implementation, "ADDSUB");
}

/// Appendix B §5.1: function query for ADD ∧ SUB.
#[test]
fn function_query_add_sub() {
    let mut icdb = Icdb::new();
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command: function_query;
         function:(ADD,SUB);
         component:?s[]",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStrList(Some(components)) = &args[0] else {
        panic!()
    };
    assert!(
        components.iter().any(|c| c == "Adder_Subtractor"),
        "{components:?}"
    );
}

/// Appendix B §5.4: the connection query for an add_sub instance, checking
/// the `## function ADD … ** control value` structure.
#[test]
fn connect_component_add_sub() {
    let mut icdb = Icdb::new();
    let mut gen = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component; implementation:ADDSUB; size:4; instance:?s",
        &mut gen,
    )
    .unwrap();
    let CqlArg::OutStr(Some(add_sub_4)) = gen.remove(0) else {
        panic!()
    };

    let mut args = vec![CqlArg::InStr(add_sub_4), CqlArg::OutStr(None)];
    icdb.execute(
        "command:connect_component; instance:%s; connect:?s",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStr(Some(connect)) = &args[1] else {
        panic!()
    };
    assert!(connect.contains("## function ADD"), "{connect}");
    assert!(connect.contains("## function SUB"), "{connect}");
    assert!(connect.contains("** ADDSUBCTL 0"), "{connect}");
    assert!(connect.contains("** ADDSUBCTL 1"), "{connect}");
}

/// Appendix B §7: the component-list lifecycle commands.
#[test]
fn component_list_lifecycle() {
    let mut icdb = Icdb::new();
    icdb.execute("command:start_a_design; design:mydesign", &mut [])
        .unwrap();
    icdb.execute("command:start_a_transaction; design:mydesign", &mut [])
        .unwrap();

    let mut gen = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component; implementation:ADDER; size:4; instance:?s",
        &mut gen,
    )
    .unwrap();
    let CqlArg::OutStr(Some(keeper)) = gen.remove(0) else {
        panic!()
    };
    let mut gen = vec![CqlArg::OutStr(None)];
    icdb.execute(
        "command:request_component; implementation:REGISTER; size:4; instance:?s",
        &mut gen,
    )
    .unwrap();
    let CqlArg::OutStr(Some(scratch)) = gen.remove(0) else {
        panic!()
    };

    let mut args = vec![CqlArg::InStr(keeper.clone())];
    icdb.execute(
        "command:put_in_component_list; design:mydesign; instance:%s",
        &mut args,
    )
    .unwrap();
    icdb.execute("command:end_a_transaction; design:mydesign", &mut [])
        .unwrap();
    assert!(icdb.instance(&keeper).is_ok(), "listed instance survives");
    assert!(
        icdb.instance(&scratch).is_err(),
        "unlisted instance deleted"
    );

    icdb.execute("command:end_a_design; design:mydesign", &mut [])
        .unwrap();
    assert!(
        icdb.instance(&keeper).is_err(),
        "design teardown deletes the list"
    );
}

/// Unknown commands and missing slots produce errors, not silence.
#[test]
fn cql_error_paths() {
    let mut icdb = Icdb::new();
    assert!(icdb.execute("command:frobnicate; x:1", &mut []).is_err());
    assert!(icdb.execute("no_command_term:1", &mut []).is_err());
    let mut args = vec![CqlArg::OutStr(None)];
    assert!(icdb
        .execute(
            "command:instance_query; instance:ghost; delay:?s",
            &mut args
        )
        .is_err());
}
