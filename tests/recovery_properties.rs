//! Crash-recovery property suite: random mutation scripts against a
//! durable [`Icdb`], killed at every WAL record boundary (plus a torn
//! half-record), must recover to a state whose CQL-visible transcript is
//! byte-identical to an uninterrupted replay of exactly the journaled
//! prefix.
//!
//! The suite leans on the event-sourcing invariant: live execution and
//! recovery replay share one `Icdb::apply` choke point, and generation is
//! deterministic — so "state after k journaled events" is well-defined
//! regardless of how the process died.

use icdb::store::wal::{scan_wal, WalWriter};
use icdb::{ComponentRequest, Icdb, MutationEvent};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// One step of a random mutation script, expressed over the public API.
#[derive(Debug, Clone)]
enum Op {
    /// Generate a component (kind, size).
    Request(u8, u32),
    /// Generate a layout for the i-th created instance (if any).
    Layout(u8),
    /// Acquire a uniquely-named implementation and generate from it.
    Acquire(u8),
    /// start_a_design + transaction, one request, keep-or-drop, end.
    Transaction(u8, bool),
    /// Publish the generation-cache statistics table.
    PublishStats,
    /// Open a session namespace and install one instance in it.
    SessionInstall(u32),
    /// Open a session namespace and immediately drop it.
    SessionChurn,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 2u32..5).prop_map(|(k, s)| Op::Request(k, s)),
        (0u8..4).prop_map(Op::Layout),
        (0u8..4).prop_map(Op::Acquire),
        (0u8..3, any::<bool>()).prop_map(|(i, keep)| Op::Transaction(i, keep)),
        (0u8..1).prop_map(|_| Op::PublishStats),
        (2u32..4).prop_map(Op::SessionInstall),
        (0u8..1).prop_map(|_| Op::SessionChurn),
    ]
}

fn request_of(kind: u8, size: u32) -> ComponentRequest {
    match kind % 4 {
        0 => ComponentRequest::by_component("counter").attribute("size", size.to_string()),
        1 => ComponentRequest::by_implementation("ADDER").attribute("size", size.to_string()),
        2 => ComponentRequest::by_implementation("REGISTER")
            .attribute("size", size.to_string())
            .clock_width(30.0),
        _ => ComponentRequest::by_implementation("MUX").attribute("size", size.to_string()),
    }
}

/// Runs a script through the classic API; failures are tolerated (they
/// journal and replay deterministically, which is part of what the suite
/// checks).
fn run_script(icdb: &mut Icdb, ops: &[Op]) {
    let mut created: Vec<String> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Request(kind, size) => {
                if let Ok(name) = icdb.request_component(&request_of(*kind, *size)) {
                    created.push(name);
                }
            }
            Op::Layout(i) => {
                if let Some(name) = created.get(*i as usize % created.len().max(1)) {
                    let _ = icdb.generate_layout(name, None, None);
                }
            }
            Op::Acquire(tag) => {
                let name = format!("RPROP_{tag}");
                let iif = format!("NAME: {name}; INORDER: A, B; OUTORDER: O; {{ O = A * B; }}");
                let _ = icdb.insert_implementation(
                    &iif,
                    "Logic_unit",
                    &["AND"],
                    &[],
                    None,
                    "recovery-prop acquired",
                );
                if let Ok(inst) =
                    icdb.request_component(&ComponentRequest::by_implementation(&name))
                {
                    created.push(inst);
                }
            }
            Op::Transaction(kind, keep) => {
                let design = format!("design{i}");
                if icdb.start_design(&design).is_err() {
                    continue;
                }
                let _ = icdb.start_transaction(&design);
                if let Ok(name) = icdb.request_component(&request_of(*kind, 3)) {
                    if *keep {
                        let _ = icdb.put_in_component_list(&design, &name);
                        created.push(name);
                    }
                }
                let _ = icdb.end_transaction(&design);
            }
            Op::PublishStats => {
                let _ = icdb.publish_cache_stats();
            }
            Op::SessionInstall(size) => {
                let ns = icdb.create_namespace();
                let _ = icdb.request_component_in(
                    ns,
                    &ComponentRequest::by_implementation("ADDER")
                        .attribute("size", size.to_string()),
                );
            }
            Op::SessionChurn => {
                let ns = icdb.create_namespace();
                icdb.drop_namespace(ns);
            }
        }
    }
}

/// The CQL-visible state: every namespace's instances with their §3.3
/// strings, the relational tables row-by-row, and the design-data file
/// paths with their contents' lengths (full contents for small views).
fn transcript(icdb: &Icdb) -> String {
    let mut out = String::new();
    for ns in icdb.namespace_ids() {
        out.push_str(&format!("== namespace {ns}\n"));
        let names: Vec<String> = icdb
            .instance_names_in(ns)
            .map(|v| v.iter().map(|n| n.to_string()).collect())
            .unwrap_or_default();
        for name in names {
            out.push_str(&format!("instance {name}\n"));
            out.push_str(&icdb.delay_string_in(ns, &name).unwrap_or_default());
            out.push_str(&icdb.shape_string_in(ns, &name).unwrap_or_default());
            out.push_str(&icdb.vhdl_head_in(ns, &name).unwrap_or_default());
        }
    }
    for table in ["components", "instances", "cache_stats", "exploration"] {
        out.push_str(&format!("== table {table}\n"));
        if let Ok(rows) = icdb.db.query(&format!("SELECT * FROM {table}")) {
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
                out.push_str(&cells.join("|"));
                out.push('\n');
            }
        }
    }
    out.push_str("== files\n");
    for path in icdb.files.list("") {
        let contents = icdb.files.read(path).unwrap_or_default();
        out.push_str(&format!("{path} {}\n", contents.len()));
    }
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "icdb-recovery-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Copies a WAL prefix (first `upto` records, plus `extra` bytes of the
/// following record to simulate a torn write) into a fresh data dir.
fn truncated_copy(
    src_wal: &Path,
    records: &[Vec<u8>],
    upto: usize,
    extra: usize,
    tag: &str,
) -> PathBuf {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    let bytes = std::fs::read(src_wal).unwrap();
    // Record framing is 8 bytes of header + payload.
    let mut end = 0usize;
    for payload in &records[..upto] {
        end += 8 + payload.len();
    }
    let torn_end = (end + extra).min(bytes.len());
    std::fs::write(dir.join("wal-0.log"), &bytes[..torn_end]).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Uninterrupted crash recovery: a durable server dropped without a
    /// checkpoint (and again after one) reopens to a byte-identical
    /// transcript.
    #[test]
    fn recovery_transcript_matches_live(ops in proptest::collection::vec(arb_op(), 1..7)) {
        let dir = temp_dir("live");
        let live = {
            let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
            run_script(&mut icdb, &ops);
            icdb.sync_journal().unwrap();
            transcript(&icdb)
        };
        // WAL-only recovery.
        let recovered = Icdb::open_with_sync(&dir, false).unwrap();
        prop_assert_eq!(&transcript(&recovered), &live);
        // Checkpoint, then snapshot-based recovery.
        let mut recovered = recovered;
        recovered.checkpoint().unwrap();
        prop_assert_eq!(recovered.persist_stats().unwrap().wal_events, 0);
        drop(recovered);
        let reopened = Icdb::open_with_sync(&dir, false).unwrap();
        prop_assert_eq!(reopened.persist_stats().unwrap().recovered_events, 0);
        prop_assert_eq!(&transcript(&reopened), &live);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Kill-point sweep: for every WAL record boundary k (and a torn
    /// half-record just past it), recovery from the first k records equals
    /// an uninterrupted in-memory replay of those k events.
    #[test]
    fn every_kill_point_recovers_to_the_journaled_prefix(
        ops in proptest::collection::vec(arb_op(), 1..6),
    ) {
        let dir = temp_dir("killsrc");
        {
            let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
            run_script(&mut icdb, &ops);
            icdb.sync_journal().unwrap();
        }
        let wal = dir.join("wal-0.log");
        let scan = scan_wal(&wal).unwrap();
        prop_assert!(!scan.torn);
        let events: Vec<MutationEvent> = scan
            .records
            .iter()
            .map(|r| serde::from_bytes(r).expect("journal records decode"))
            .collect();

        for k in 0..=events.len() {
            // Expected: replay exactly k events through the same apply()
            // the recovery path uses.
            let mut expected = Icdb::new();
            for event in &events[..k] {
                let _ = expected.apply(event);
            }
            let expected = transcript(&expected);

            // Clean kill exactly at the record boundary.
            let killed = truncated_copy(&wal, &scan.records, k, 0, &format!("kill{k}"));
            let recovered = Icdb::open_with_sync(&killed, false).unwrap();
            prop_assert_eq!(
                recovered.persist_stats().unwrap().recovered_events,
                k as u64
            );
            prop_assert_eq!(&transcript(&recovered), &expected);
            drop(recovered);
            std::fs::remove_dir_all(&killed).ok();

            // Torn half-record: 5 bytes of the next record survive the
            // crash. Recovery must truncate them and land on the same
            // prefix — and keep accepting appends afterwards.
            if k < events.len() {
                let torn = truncated_copy(&wal, &scan.records, k, 5, &format!("torn{k}"));
                let mut recovered = Icdb::open_with_sync(&torn, false).unwrap();
                prop_assert_eq!(
                    recovered.persist_stats().unwrap().recovered_events,
                    k as u64
                );
                prop_assert_eq!(&transcript(&recovered), &expected);
                // Post-recovery commits append cleanly after the truncation.
                let name = recovered
                    .request_component(&ComponentRequest::by_implementation("ADDER"))
                    .unwrap();
                recovered.sync_journal().unwrap();
                let post = transcript(&recovered);
                drop(recovered);
                let reopened = Icdb::open_with_sync(&torn, false).unwrap();
                prop_assert!(reopened.instance(&name).is_ok());
                prop_assert_eq!(&transcript(&reopened), &post);
                drop(reopened);
                std::fs::remove_dir_all(&torn).ok();
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Group-commit kill points: concurrent committers ride one batched WAL,
/// so a SIGKILL lands *between* batch-fsync boundaries. The disk image at
/// any record boundary (and with a torn half-record past it) must recover
/// exactly that prefix — byte-identical to an uninterrupted replay — and
/// the image captured right after the last acknowledgment must contain
/// every acknowledged commit.
#[test]
fn group_commit_kill_points_recover_the_acknowledged_prefix() {
    use icdb::{IcdbService, NsId};
    use std::sync::Arc;
    use std::time::Duration;

    let dir = temp_dir("group-src");
    let service =
        Arc::new(IcdbService::open_with_options(&dir, false, Duration::from_millis(2)).unwrap());

    // Four concurrent committers on distinct shards, two commits each; a
    // name is recorded only once its group commit was acknowledged.
    let acked: Vec<(NsId, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let session = service.open_session();
                    let ns = session.ns();
                    let mut names = Vec::new();
                    for size in [2 + i, 3 + i] {
                        let name = session
                            .request_component(
                                &ComponentRequest::by_implementation("ADDER")
                                    .attribute("size", size.to_string()),
                            )
                            .expect("acknowledged commit");
                        names.push(name);
                    }
                    // Server-shutdown path: the namespace must survive.
                    session.park();
                    (ns, names)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The SIGKILL disk image: copy the WAL right after the last ack, with
    // the service still live — no checkpoint, no extra flush.
    let image = temp_dir("group-image");
    std::fs::create_dir_all(&image).unwrap();
    std::fs::copy(dir.join("wal-0.log"), image.join("wal-0.log")).unwrap();
    drop(service);

    // Every acknowledged commit is in the image.
    let recovered = Icdb::open_with_sync(&image, false).unwrap();
    for (ns, names) in &acked {
        let have: Vec<String> = recovered
            .instance_names_in(*ns)
            .map(|v| v.iter().map(|n| n.to_string()).collect())
            .unwrap_or_default();
        for name in names {
            assert!(
                have.contains(name),
                "acknowledged {name} missing from {ns} after recovery"
            );
        }
    }
    drop(recovered);

    // Kill-point sweep over the group-committed log: every record
    // boundary — the state a crash between batch fsyncs leaves behind —
    // recovers exactly that prefix (odd boundaries also get a torn
    // half-record, which recovery must truncate away).
    let wal = image.join("wal-0.log");
    let scan = scan_wal(&wal).unwrap();
    assert!(!scan.torn);
    let events: Vec<MutationEvent> = scan
        .records
        .iter()
        .map(|r| serde::from_bytes(r).expect("group-committed records decode"))
        .collect();
    for k in 0..=events.len() {
        let mut expected = Icdb::new();
        for event in &events[..k] {
            let _ = expected.apply(event);
        }
        let expected = transcript(&expected);
        let extra = if k < events.len() && k % 2 == 1 { 5 } else { 0 };
        let killed = truncated_copy(&wal, &scan.records, k, extra, &format!("gkill{k}"));
        let recovered = Icdb::open_with_sync(&killed, false).unwrap();
        assert_eq!(
            recovered.persist_stats().unwrap().recovered_events,
            k as u64
        );
        assert_eq!(transcript(&recovered), expected, "kill point {k}");
        drop(recovered);
        std::fs::remove_dir_all(&killed).ok();
    }
    std::fs::remove_dir_all(&image).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// The exploration corpus is journaled state: a sweep's recorded points
/// survive a SIGKILL (WAL image copied while the server is live, no
/// checkpoint) and reopen to byte-identical `corpus` CQL answers — and
/// the reopened server warm-starts its result cache from the corpus.
#[test]
fn corpus_survives_sigkill_with_identical_answers() {
    use icdb::cql::CqlArg;

    fn corpus_answer(icdb: &mut Icdb) -> (i64, Vec<String>) {
        let mut args = vec![CqlArg::OutInt(None), CqlArg::OutStrList(None)];
        icdb.execute("command:corpus; entries:?d; list:?s[]", &mut args)
            .unwrap();
        let CqlArg::OutStrList(Some(list)) = args.pop().unwrap() else {
            panic!("no corpus list");
        };
        let CqlArg::OutInt(Some(entries)) = args[0] else {
            panic!("no corpus entry count");
        };
        (entries, list)
    }

    let dir = temp_dir("corpus-live");
    let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
    let spec = icdb::ExploreSpec::by_component("counter")
        .widths([3, 4])
        .strategies(["cheapest", "fastest"]);
    icdb.explore(&spec).unwrap();
    icdb.flush_corpus().unwrap();
    icdb.sync_journal().unwrap();
    let live = corpus_answer(&mut icdb);
    assert!(live.0 > 0, "the sweep must have recorded corpus rows");

    // The SIGKILL disk image: WAL copied while the server is still live.
    let image = temp_dir("corpus-image");
    std::fs::create_dir_all(&image).unwrap();
    std::fs::copy(dir.join("wal-0.log"), image.join("wal-0.log")).unwrap();
    drop(icdb);

    let mut recovered = Icdb::open_with_sync(&image, false).unwrap();
    assert_eq!(corpus_answer(&mut recovered), live, "WAL-only recovery");
    assert!(
        recovered.cache_stats().result.entries > 0,
        "reopen must warm-start the result cache from the corpus"
    );
    drop(recovered);

    // A checkpointed snapshot carries the corpus too.
    let mut checkpointed = Icdb::open_with_sync(&dir, false).unwrap();
    checkpointed.checkpoint().unwrap();
    drop(checkpointed);
    let mut reopened = Icdb::open_with_sync(&dir, false).unwrap();
    assert_eq!(reopened.persist_stats().unwrap().recovered_events, 0);
    assert_eq!(corpus_answer(&mut reopened), live, "snapshot recovery");

    std::fs::remove_dir_all(&image).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// The WAL writer refuses to resurrect torn bytes: re-opening after a tear
/// truncates, and the next append lands where the tear was (deterministic
/// framing, so this is a plain unit test rather than a property).
#[test]
fn torn_tail_is_replaced_by_the_next_commit() {
    let dir = temp_dir("tear-unit");
    {
        let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
        icdb.request_component(&ComponentRequest::by_implementation("ADDER"))
            .unwrap();
        icdb.sync_journal().unwrap();
    }
    let wal = dir.join("wal-0.log");
    let full = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &full[..full.len() - 3]).unwrap();
    {
        let mut icdb = Icdb::open_with_sync(&dir, false).unwrap();
        assert_eq!(icdb.persist_stats().unwrap().recovered_events, 0);
        assert!(icdb.instance_names().is_empty());
        icdb.request_component(&ComponentRequest::by_implementation("REGISTER"))
            .unwrap();
        icdb.sync_journal().unwrap();
    }
    let scan = scan_wal(&wal).unwrap();
    assert_eq!(scan.records.len(), 1);
    assert!(!scan.torn);
    let recovered = Icdb::open_with_sync(&dir, false).unwrap();
    assert_eq!(recovered.instance_names().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

// Ensure the WalWriter symbol stays exercised through the facade (the
// store's own unit tests cover its behavior in depth).
#[test]
fn wal_writer_reachable_through_facade() {
    let dir = temp_dir("facade-wal");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal-0.log");
    let (mut w, _) = WalWriter::open(&path, false).unwrap();
    w.append(b"facade").unwrap();
    assert_eq!(scan_wal(&path).unwrap().records.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}
