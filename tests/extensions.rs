//! Integration tests for the paper's secondary mechanisms: knowledge
//! acquisition (§2.2), component merging (§2.1), tool management (§4.2)
//! and power estimation (§1) — all through the public API and CQL.

use icdb::cql::CqlArg;
use icdb::sim::{Logic, Simulator};
use icdb::Icdb;

const GRAY_COUNTER: &str = "
NAME: GRAY_COUNTER;
PARAMETER: size;
INORDER: CLK, RST;
OUTORDER: G[size];
PIIFVARIABLE: B[size], C[size+1];
VARIABLE: i;
{
  C[0] = 1;
  #for(i=0;i<size;i++)
  {
    B[i] = (B[i] (+) C[i]) @(~r CLK) ~a(0/RST);
    C[i+1] = C[i] * B[i];
  }
  #for(i=0;i<size-1;i++)
    G[i] = B[i] (+) B[i+1];
  G[size-1] = B[size-1];
}";

#[test]
fn inserted_implementation_behaves_correctly() {
    let mut icdb = Icdb::new();
    icdb.insert_implementation(
        GRAY_COUNTER,
        "Counter",
        &["INC", "COUNTER"],
        &[("size", 4)],
        None,
        "gray counter",
    )
    .unwrap();
    let name = icdb
        .request_component(
            &icdb::ComponentRequest::by_implementation("GRAY_COUNTER").attribute("size", "4"),
        )
        .unwrap();
    let inst = icdb.instance(&name).unwrap().clone();
    let mut sim = Simulator::new(&inst.netlist, &icdb.cells).unwrap();
    // Reset, then check the output really follows the gray sequence.
    sim.set_by_name("CLK", Logic::Zero).unwrap();
    sim.set_by_name("RST", Logic::One).unwrap();
    sim.propagate();
    sim.set_by_name("RST", Logic::Zero).unwrap();
    sim.propagate();
    let mut binary = 0u64;
    for _step in 0..10 {
        binary = (binary + 1) & 0xF;
        sim.pulse("CLK").unwrap();
        let gray = sim.bus("G", 4).unwrap();
        assert_eq!(gray, binary ^ (binary >> 1), "gray({binary})");
    }
}

#[test]
fn insert_component_via_cql_and_regenerate() {
    let mut icdb = Icdb::new();
    let mut args = vec![CqlArg::InStr(GRAY_COUNTER.into()), CqlArg::OutStr(None)];
    icdb.execute(
        "command:insert_component; IIF:%s; component:Counter;
         function:(INC,COUNTER); parameter:(size:4); implementation:?s",
        &mut args,
    )
    .unwrap();
    assert_eq!(args[1], CqlArg::OutStr(Some("GRAY_COUNTER".into())));
    // Second insert of the same name fails through CQL too.
    let mut args = vec![CqlArg::InStr(GRAY_COUNTER.into()), CqlArg::OutStr(None)];
    assert!(icdb
        .execute(
            "command:insert_component; IIF:%s; component:Counter;
             function:(INC); parameter:(size:4); implementation:?s",
            &mut args,
        )
        .is_err());
}

#[test]
fn merge_query_via_cql() {
    let mut icdb = Icdb::new();
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:merge_query; components:(REGISTER,INCREMENTER); merged:?s[]",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStrList(Some(merged)) = &args[0] else {
        panic!()
    };
    assert!(merged.contains(&"COUNTER".to_string()), "{merged:?}");
    // A set nothing covers yields an empty list, not an error.
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:merge_query; components:(ALU,COMPARATOR); merged:?s[]",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStrList(Some(none)) = &args[0] else {
        panic!()
    };
    assert!(none.is_empty(), "{none:?}");
}

#[test]
fn tool_query_lists_generators_and_steps() {
    let mut icdb = Icdb::new();
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:tool_query; accepts:iif; generators:?s[]",
        &mut args,
    )
    .unwrap();
    assert_eq!(
        args[0],
        CqlArg::OutStrList(Some(vec!["embedded-milo".to_string()]))
    );
    let mut args = vec![CqlArg::OutStrList(None)];
    icdb.execute(
        "command:tool_query; name:embedded-les; steps:?s[]",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutStrList(Some(steps)) = &args[0] else {
        panic!()
    };
    assert_eq!(steps, &["strip-placer", "cif-writer"]);
}

#[test]
fn power_query_and_scaling() {
    let mut icdb = Icdb::new();
    let small = icdb
        .request_component(
            &icdb::ComponentRequest::by_implementation("ADDER").attribute("size", "4"),
        )
        .unwrap();
    let big = icdb
        .request_component(
            &icdb::ComponentRequest::by_implementation("ADDER").attribute("size", "16"),
        )
        .unwrap();
    let parse_uw = |s: &str| -> f64 { s.split_whitespace().nth(1).unwrap().parse().unwrap() };
    let p_small = parse_uw(&icdb.power_string(&small).unwrap());
    let p_big = parse_uw(&icdb.power_string(&big).unwrap());
    assert!(p_big > p_small * 2.0, "{p_small} vs {p_big}");

    // Through CQL as part of an instance query.
    let mut args = vec![CqlArg::InStr(small), CqlArg::OutStr(None)];
    icdb.execute("command:instance_query; instance:%s; power:?s", &mut args)
        .unwrap();
    let CqlArg::OutStr(Some(p)) = &args[1] else {
        panic!()
    };
    assert!(p.starts_with("POWER "));
}

#[test]
fn milo_text_round_trips_through_the_file_store() {
    // The stored `.milo` view of an instance parses back with the same
    // port lists (the tool-exchange format of Appendix A §4.2).
    let mut icdb = Icdb::new();
    let name = icdb
        .request_component(
            &icdb::ComponentRequest::by_implementation("ADDER").attribute("size", "4"),
        )
        .unwrap();
    let text = icdb.files.read(&format!("instances/{name}.milo")).unwrap();
    let parsed = icdb::iif::parse_milo(text).unwrap();
    assert_eq!(parsed.name, "ADDER");
    assert_eq!(parsed.inputs.len(), 9);
    assert_eq!(parsed.outputs.len(), 5);
    assert!(!parsed.equations.is_empty());
}
