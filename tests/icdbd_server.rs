//! End-to-end tests of the `icdbd` TCP server: wire round-trips are
//! byte-identical to the embedded API, connections get isolated sessions,
//! and the connection cap refuses politely.

use icdb::cql::CqlArg;
use icdb::net::{IcdbClient, Server};
use icdb::{Icdb, IcdbError, IcdbService};
use std::sync::Arc;
use std::time::Duration;

fn spawn_server(max_connections: usize) -> (icdb::net::ServerHandle, Arc<IcdbService>) {
    let service = Arc::new(IcdbService::new());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), max_connections)
        .expect("bind ephemeral port");
    (server.spawn().expect("spawn server"), service)
}

#[test]
fn wire_results_match_the_embedded_api() {
    let (handle, _service) = spawn_server(8);
    let mut client = IcdbClient::connect(handle.addr()).unwrap();

    // Generate a counter over the wire, with a multiline %s constraint
    // input — the paper's §3.2.2 request verbatim.
    let mut args = vec![
        CqlArg::InStr("rdelay Q[4] 10\noload Q[4] 10".into()),
        CqlArg::OutStr(None),
    ];
    client
        .execute(
            "command:request_component; component_name:counter; attribute:(size:5); \
             function:(INC); clock_width:30; comb_delay:%s; set_up_time:30; \
             generated_component:?s",
            &mut args,
        )
        .unwrap();
    let CqlArg::OutStr(Some(name)) = &args[1] else {
        panic!("no instance name");
    };
    assert_eq!(name, "counter$1");

    // Query delay + shape over the wire (multiline outputs).
    let mut args = vec![
        CqlArg::InStr(name.clone()),
        CqlArg::OutStr(None),
        CqlArg::OutStr(None),
    ];
    client
        .execute(
            "command:instance_query; generated_component:%s; delay:?s; shape_function:?s",
            &mut args,
        )
        .unwrap();
    let CqlArg::OutStr(Some(wire_delay)) = &args[1] else {
        panic!("no delay");
    };
    let CqlArg::OutStr(Some(wire_shape)) = &args[2] else {
        panic!("no shape");
    };

    // Byte-identical to the same sequence against an embedded server.
    let mut solo = Icdb::new();
    let mut solo_args = vec![
        CqlArg::InStr("rdelay Q[4] 10\noload Q[4] 10".into()),
        CqlArg::OutStr(None),
    ];
    solo.execute(
        "command:request_component; component_name:counter; attribute:(size:5); \
         function:(INC); clock_width:30; comb_delay:%s; set_up_time:30; \
         generated_component:?s",
        &mut solo_args,
    )
    .unwrap();
    assert_eq!(wire_delay, &solo.delay_string("counter$1").unwrap());
    assert_eq!(wire_shape, &solo.shape_string("counter$1").unwrap());

    // List outputs travel too.
    let mut args = vec![CqlArg::OutStrList(None)];
    client
        .execute(
            "command:function_query; function:(ADD,SUB); implementation:?s[]",
            &mut args,
        )
        .unwrap();
    let CqlArg::OutStrList(Some(impls)) = &args[0] else {
        panic!("no list");
    };
    assert!(impls.contains(&"ADDSUB".to_string()), "{impls:?}");

    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn connections_are_isolated_sessions() {
    let (handle, service) = spawn_server(8);
    let mut a = IcdbClient::connect(handle.addr()).unwrap();
    let mut b = IcdbClient::connect(handle.addr()).unwrap();
    let command = "command:request_component; component_name:counter; attribute:(size:4); \
                   generated_component:?s";

    let mut args = vec![CqlArg::OutStr(None)];
    a.execute(command, &mut args).unwrap();
    let CqlArg::OutStr(Some(name_a)) = &args[0] else {
        panic!()
    };
    let mut args = vec![CqlArg::OutStr(None)];
    b.execute(command, &mut args).unwrap();
    let CqlArg::OutStr(Some(name_b)) = &args[0] else {
        panic!()
    };
    // Independent per-session naming counters…
    assert_eq!(name_a, "counter$1");
    assert_eq!(name_b, "counter$1");
    // …but one shared generation cache underneath.
    assert_eq!(service.cache_stats().result.hits, 1);

    // B cannot see A's instance beyond the name coincidence: query B's own
    // session for an instance that only A created more of.
    let mut args = vec![CqlArg::OutStr(None)];
    a.execute(command, &mut args).unwrap(); // counter$2 in A
    let mut args = vec![CqlArg::InStr("counter$2".into()), CqlArg::OutStr(None)];
    let err = b
        .execute(
            "command:instance_query; generated_component:%s; delay:?s",
            &mut args,
        )
        .unwrap_err();
    assert!(err.to_string().contains("counter$2"), "{err}");

    // A malformed command errors without killing the connection.
    let mut args = vec![];
    assert!(b.execute("command:bogus_command", &mut args).is_err());
    let mut args = vec![CqlArg::OutInt(None)];
    b.execute("command:cache_query; hits:?d", &mut args)
        .unwrap();

    // ERR reason codes distinguish protocol-parse failures from command
    // failures: bad slot syntax never reaches the executor (`ERR parse`),
    // while an unknown command executes and fails (`ERR cql`).
    let parse_err = b.execute("command:x; y:%q", &mut []).unwrap_err();
    assert!(
        matches!(&parse_err, IcdbError::Parse(m) if m.contains("slot")),
        "expected a parse-coded error, got {parse_err:?}"
    );
    let cql_err = b.execute("command:bogus_command", &mut []).unwrap_err();
    assert!(
        matches!(&cql_err, IcdbError::Cql(m) if m.contains("bogus_command")),
        "expected a cql-coded error, got {cql_err:?}"
    );

    a.quit().unwrap();
    b.quit().unwrap();
    handle.shutdown();
}

#[test]
fn explore_runs_over_the_wire() {
    let (handle, _service) = spawn_server(4);
    let mut client = IcdbClient::connect(handle.addr()).unwrap();

    // Sweep the counter implementations over three widths with the delay
    // bound arriving through a typed %r constraint slot.
    let command = "command:explore; component:counter; widths:(3,4,5); \
                   strategies:(cheapest,fastest); max_delay:%r; workers:2; \
                   winner:?s; front:?s[]; points:?d; front_size:?d";
    let mut args = vec![
        CqlArg::InReal(1e9), // any point qualifies: winner = min area
        CqlArg::OutStr(None),
        CqlArg::OutStrList(None),
        CqlArg::OutInt(None),
        CqlArg::OutInt(None),
    ];
    client.execute(command, &mut args).unwrap();
    let CqlArg::OutStr(Some(wire_winner)) = &args[1] else {
        panic!("no winner");
    };
    let CqlArg::OutStrList(Some(wire_front)) = &args[2] else {
        panic!("no front");
    };
    let (CqlArg::OutInt(Some(points)), CqlArg::OutInt(Some(front_size))) = (&args[3], &args[4])
    else {
        panic!("no counts");
    };
    assert!(
        *points >= 18,
        "3+ impls x 3 widths x 2 strategies: {points}"
    );
    assert_eq!(*front_size as usize, wire_front.len());
    assert!(!wire_winner.is_empty());

    // Byte-identical to the embedded sweep.
    let icdb = Icdb::new();
    let report = icdb
        .explore(
            &icdb::ExploreSpec::by_component("counter")
                .widths([3, 4, 5])
                .strategies(["cheapest", "fastest"])
                .objective(icdb::Objective::MinAreaUnderDelay(1e9))
                .workers(2),
        )
        .unwrap();
    assert_eq!(wire_front, &report.front_lines());
    assert_eq!(wire_winner, &report.winner_point().unwrap().label());

    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn connection_cap_refuses_politely_and_recovers() {
    let (handle, service) = spawn_server(2);
    let a = IcdbClient::connect(handle.addr()).unwrap();
    let b = IcdbClient::connect(handle.addr()).unwrap();

    // Third connection is refused with an `ERR capacity` greeting, which
    // the client maps onto `Unsupported` — distinguishable from the
    // `Cql`/`Parse` errors a live session produces.
    let err = IcdbClient::connect(handle.addr()).unwrap_err();
    assert!(
        matches!(&err, IcdbError::Unsupported(m) if m.contains("connection capacity")),
        "unexpected error: {err:?}"
    );

    // Capacity frees up once a client leaves (the server tears the session
    // down asynchronously, so poll briefly).
    a.quit().unwrap();
    let mut again = None;
    for _ in 0..100 {
        match IcdbClient::connect(handle.addr()) {
            Ok(c) => {
                again = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut again = again.expect("capacity should free after quit");
    let mut args = vec![CqlArg::OutInt(None)];
    again
        .execute("command:cache_query; capacity:?d", &mut args)
        .unwrap();

    // Every live connection is one open session on the service.
    assert!(service.session_count() >= 2);
    again.quit().unwrap();
    b.quit().unwrap();
    handle.shutdown();
}
