//! Event-loop smoke: connections ≫ worker threads.
//!
//! The epoll server multiplexes its connections over a small worker
//! pool, so the connection cap is admission policy rather than a thread
//! budget. These tests pin that down end-to-end: 512 concurrent
//! connections against a 4-worker server — interleaving warm and cold
//! generation, `attach` traffic and exploration sweeps — where every
//! session's transcript must be byte-identical to the same script
//! replayed sequentially on a dedicated session, no connection may be
//! refused below the admission limit, and a SIGTERM with live
//! connections and a non-zero group-commit window must still drain the
//! commit queue into a clean checkpoint.

#![cfg(unix)]

use icdb::cql::CqlArg;
use icdb::net::{IcdbClient, Server};
use icdb::{IcdbService, NsId};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Connections opened against the 4-worker server.
const CONNECTIONS: usize = 512;
/// Driver threads (each owns CONNECTIONS / DRIVERS live connections).
const DRIVERS: usize = 16;
/// Worker pool size under test.
const WORKERS: usize = 4;

/// One client's deterministic script, parameterized by its global index.
/// Returns the transcript: every output slot value, in order.
fn run_script(index: usize, exec: &mut dyn FnMut(&str, &mut [CqlArg])) -> Vec<String> {
    let mut transcript = Vec::new();
    let size = 3 + (index % 3);
    // Warm/cold generation: three size classes, so the first arrival of
    // each class runs the cold pipeline and the rest hit the cache.
    let mut args = vec![CqlArg::OutStr(None)];
    exec(
        &format!(
            "command:request_component; component_name:counter; attribute:(size:{size}); \
             generated_component:?s"
        ),
        &mut args,
    );
    let CqlArg::OutStr(Some(name)) = args[0].clone() else {
        panic!("client {index}: no instance name");
    };
    transcript.push(name.clone());
    // Instance query in the session's namespace.
    let mut args = vec![CqlArg::InStr(name.clone()), CqlArg::OutStr(None)];
    exec(
        "command:instance_query; generated_component:%s; delay:?s",
        &mut args,
    );
    let CqlArg::OutStr(Some(delay)) = args[1].clone() else {
        panic!("client {index}: no delay");
    };
    transcript.push(delay);
    // A sparse slice of the fleet sweeps the design space (read-only, so
    // it rides the lock-free snapshot path on the server).
    if index % 64 == 0 {
        let mut args = vec![
            CqlArg::InReal(1e9),
            CqlArg::OutStr(None),
            CqlArg::OutInt(None),
        ];
        exec(
            "command:explore; component:counter; widths:(3,4); strategies:(cheapest); \
             max_delay:%r; workers:1; winner:?s; points:?d",
            &mut args,
        );
        let CqlArg::OutStr(Some(winner)) = args[1].clone() else {
            panic!("client {index}: no winner");
        };
        let CqlArg::OutInt(Some(points)) = args[2] else {
            panic!("client {index}: no points");
        };
        transcript.push(winner);
        transcript.push(points.to_string());
    }
    // One more generation after the detour: the namespace (and its
    // naming counter) must have survived everything above.
    let mut args = vec![CqlArg::OutStr(None)];
    exec(
        &format!(
            "command:request_component; component_name:counter; attribute:(size:{size}); \
             generated_component:?s"
        ),
        &mut args,
    );
    let CqlArg::OutStr(Some(second)) = args[0].clone() else {
        panic!("client {index}: no second instance");
    };
    transcript.push(second);
    transcript
}

/// The scripts only differ by `index % 3` (size class) and `index % 64`
/// (explore detour), so sequential replays are shared per class.
fn class_of(index: usize) -> usize {
    (index % 3) + if index % 64 == 0 { 3 } else { 0 }
}

/// A representative client index for each script class: classes 0–2 are
/// the plain scripts per size class, 3–5 additionally take the explore
/// detour (index ≡ 0 mod 64, picked so index % 3 covers every size).
const CLASS_REPRESENTATIVES: [usize; 6] = [3, 1, 2, 192, 64, 128];

#[test]
fn five_hundred_twelve_connections_on_four_workers() {
    for (class, index) in CLASS_REPRESENTATIVES.iter().enumerate() {
        assert_eq!(class_of(*index), class, "representative table is off");
    }

    let service = Arc::new(IcdbService::new());
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        CONNECTIONS + 64, // admission limit comfortably above the fleet
        WORKERS,
    )
    .expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    // Sequential replays, one per script class, each on a dedicated
    // session of its own fresh service — the ground truth the concurrent
    // transcripts must match byte-for-byte.
    let expected: Vec<Vec<String>> = CLASS_REPRESENTATIVES
        .iter()
        .map(|&index| {
            let solo = IcdbService::shared();
            let session = solo.open_session();
            run_script(index, &mut |cmd, args| {
                session.execute(cmd, args).expect("sequential replay");
            })
        })
        .collect();

    type Transcripts = Vec<(usize, Vec<String>)>;
    let transcripts: Mutex<Transcripts> = Mutex::new(Vec::with_capacity(CONNECTIONS));
    let barrier = Arc::new(Barrier::new(DRIVERS));
    std::thread::scope(|scope| {
        for driver in 0..DRIVERS {
            let transcripts = &transcripts;
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let per = CONNECTIONS / DRIVERS;
                // Open every connection first — all 512 are live at once,
                // far more than the 4 workers could serve thread-per-conn.
                let mut clients: Vec<(usize, IcdbClient)> = (0..per)
                    .map(|slot| {
                        let index = driver * per + slot;
                        let client = IcdbClient::connect(addr).unwrap_or_else(|e| {
                            panic!("connection {index} refused below the admission limit: {e}")
                        });
                        (index, client)
                    })
                    .collect();
                barrier.wait();
                for (index, client) in &mut clients {
                    let own_ns = client.session_ns().expect("greeting carries ns");
                    let mut calls = 0usize;
                    let transcript = run_script(*index, &mut |cmd, args| {
                        client.execute(cmd, args).expect("wire execute");
                        calls += 1;
                        // Interleave attach traffic: re-binding to the
                        // session's own namespace mid-script must be a
                        // transcript no-op.
                        if calls == 1 {
                            client.attach(own_ns).expect("self attach");
                        }
                    });
                    transcripts.lock().unwrap().push((*index, transcript));
                }
                for (_, client) in clients {
                    client.quit().expect("quit");
                }
            });
        }
    });

    let transcripts = transcripts.into_inner().unwrap();
    assert_eq!(transcripts.len(), CONNECTIONS);
    for (index, transcript) in transcripts.iter() {
        assert_eq!(
            transcript,
            &expected[class_of(*index)],
            "session {index} diverged from its sequential replay"
        );
    }
    // `quit` is acknowledged by teardown, not a response line, so the
    // session release is asynchronous — but it must complete.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.session_count() != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(service.session_count(), 0, "quit sessions must release");
    handle.shutdown();
}

#[test]
fn admission_limit_refuses_exactly_above_cap() {
    let service = Arc::new(IcdbService::new());
    let server =
        Server::bind_with("127.0.0.1:0", Arc::clone(&service), 8, 2).expect("bind ephemeral");
    let handle = server.spawn().expect("spawn");

    // Everything below the cap is admitted…
    let mut admitted: Vec<IcdbClient> = (0..8)
        .map(|i| {
            IcdbClient::connect(handle.addr())
                .unwrap_or_else(|e| panic!("connection {i} refused below the cap: {e}"))
        })
        .collect();
    // …and the first connection above it is refused with the capacity
    // code, not queued or dropped.
    let err = IcdbClient::connect(handle.addr()).expect_err("over-cap connect must be refused");
    assert!(
        matches!(&err, icdb::IcdbError::Unsupported(m) if m.contains("connection capacity (8)")),
        "unexpected refusal: {err:?}"
    );
    // Capacity frees once a client leaves (teardown is asynchronous).
    admitted.remove(0).quit().expect("quit");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match IcdbClient::connect(handle.addr()) {
            Ok(_) => break,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("capacity never freed: {e}"),
        }
    }
    drop(admitted);
    handle.shutdown();
}

// ------------------------------------------------- SIGTERM drain (e2e)

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icdb-event-loop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("addr")
        .port()
}

/// A spawned daemon that is SIGKILLed when dropped, so a failing test
/// never leaks a process.
struct Daemon(Option<Child>);

impl Daemon {
    fn kill(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().expect("SIGKILL icdbd");
            child.wait().expect("reap icdbd");
        }
    }

    /// SIGTERM, then wait for the graceful (checkpointing) exit.
    fn terminate_gracefully(&mut self) {
        let mut child = self.0.take().expect("daemon live");
        unsafe {
            assert_eq!(libc_kill(child.id() as i32, 15), 0);
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                assert!(status.success(), "graceful shutdown failed: {status:?}");
                return;
            }
            assert!(Instant::now() < deadline, "icdbd ignored SIGTERM");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}

// The `Daemon` guard kills + reaps in every path.
#[allow(clippy::zombie_processes)]
fn spawn_icdbd(port: u16, data_dir: &Path, extra: &[&str]) -> Daemon {
    let mut args = vec![
        "--addr".to_string(),
        format!("127.0.0.1:{port}"),
        "--data-dir".to_string(),
        data_dir.to_str().expect("utf-8 temp path").to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_icdbd"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn icdbd");
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Daemon(Some(child));
        }
        assert!(Instant::now() < deadline, "icdbd did not come up");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn connect(port: u16) -> IcdbClient {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match IcdbClient::connect(("127.0.0.1", port)) {
            Ok(client) => return client,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("cannot connect to icdbd: {e}"),
        }
    }
}

/// SIGTERM while many sessions are live and commits are riding a
/// non-zero group-commit window: the shutdown path must drain the
/// commit queue before checkpointing, the exit must be clean, and every
/// acknowledged commit must be served byte-identically after reboot
/// (the parked namespaces survive for `attach`).
#[test]
fn sigterm_drains_group_commits_before_checkpoint() {
    let dir = temp_dir("sigterm-drain");
    let port = free_port();
    let mut daemon = spawn_icdbd(
        port,
        &dir,
        &["--workers", "4", "--group-commit-window", "5"],
    );

    // Eight concurrent committers, each acknowledged before SIGTERM. The
    // clients stay connected across the SIGTERM (dropping one would close
    // the socket and release its namespace), so the server parks them.
    let mut sessions: Vec<(NsId, String, String, IcdbClient)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = connect(port);
                    let ns = client.session_ns().expect("greeting carries ns");
                    let mut args = vec![CqlArg::OutStr(None)];
                    client
                        .execute(
                            &format!(
                                "command:request_component; component_name:counter; \
                                 attribute:(size:{}); generated_component:?s",
                                3 + (i % 3)
                            ),
                            &mut args,
                        )
                        .expect("request over the wire");
                    let CqlArg::OutStr(Some(name)) = args[0].clone() else {
                        panic!("no name");
                    };
                    let mut args = vec![CqlArg::InStr(name.clone()), CqlArg::OutStr(None)];
                    client
                        .execute(
                            "command:instance_query; generated_component:%s; delay:?s",
                            &mut args,
                        )
                        .expect("delay over the wire");
                    let CqlArg::OutStr(Some(delay)) = args[1].clone() else {
                        panic!("no delay");
                    };
                    (ns, name, delay, client)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    sessions.sort_by_key(|(ns, _, _, _)| ns.raw());

    // SIGTERM with all eight connections open and a 5 ms group-commit
    // window still in play: the daemon must drain and checkpoint.
    daemon.terminate_gracefully();

    // Reboot from the checkpoint: zero replay, every parked namespace
    // attachable, every acknowledged instance served identically.
    let port2 = free_port();
    let mut daemon2 = spawn_icdbd(port2, &dir, &["--workers", "2"]);
    let mut client = connect(port2);
    let mut args = vec![CqlArg::OutInt(None)];
    client
        .execute("command:persist; recovered_events:?d", &mut args)
        .expect("persist query");
    assert_eq!(
        args[0],
        CqlArg::OutInt(Some(0)),
        "checkpoint must leave nothing to replay"
    );
    for (ns, name, delay, _dead) in &sessions {
        client.attach(*ns).expect("attach parked namespace");
        let mut args = vec![CqlArg::InStr(name.clone()), CqlArg::OutStr(None)];
        client
            .execute(
                "command:instance_query; generated_component:%s; delay:?s",
                &mut args,
            )
            .expect("delay after reboot");
        assert_eq!(args[1], CqlArg::OutStr(Some(delay.clone())), "{ns} {name}");
    }

    daemon2.kill();
    drop(sessions);
    std::fs::remove_dir_all(&dir).ok();
}
