//! Property-based regression suite for the generation cache: a warm cache
//! hit must produce a result *identical* to the cold path (netlist,
//! area/delay estimates, CIF output), and the cache statistics must add up
//! (`hits + misses == requests` on the result layer).

use icdb::{ComponentRequest, Icdb, IcdbService};
use proptest::prelude::*;

/// Random well-formed component requests over the builtin library,
/// covering parameterized attributes and timing constraints.
fn arb_request() -> impl Strategy<Value = ComponentRequest> {
    prop_oneof![
        (2u32..6, 1u32..4, 0u32..2, 0u32..2).prop_map(|(size, ud, en, ld)| {
            ComponentRequest::by_component("counter")
                .attribute("size", size.to_string())
                .attribute("up_or_down", ud.to_string())
                .attribute("enable", en.to_string())
                .attribute("load", ld.to_string())
        }),
        (2u32..9).prop_map(|size| {
            ComponentRequest::by_implementation("ADDER").attribute("size", size.to_string())
        }),
        (2u32..6).prop_map(|size| {
            ComponentRequest::by_implementation("ALU").attribute("size", size.to_string())
        }),
        (1u32..3).prop_map(|blocks| {
            ComponentRequest::by_implementation("CSEL_ADDER")
                .attribute("size", (4 * blocks).to_string())
        }),
        (2u32..7, 20u32..40).prop_map(|(size, cw)| {
            ComponentRequest::by_component("register")
                .attribute("size", size.to_string())
                .clock_width(f64::from(cw))
        }),
    ]
}

/// Everything the acceptance criteria compare between two instances.
fn fingerprint(icdb: &Icdb, name: &str) -> (usize, f64, String, String, String, String) {
    let inst = icdb.instance(name).expect("generated");
    (
        inst.netlist.gates.len(),
        inst.area(),
        icdb.delay_string(name).unwrap(),
        icdb.shape_string(name).unwrap(),
        icdb.area_string(name).unwrap(),
        icdb.vhdl_netlist(name).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cold generation followed by a warm hit of the *same* request yields
    /// two instances with identical netlists, estimates and CIF layouts,
    /// and the result-layer statistics account for both lookups.
    #[test]
    fn warm_hit_equals_cold_generation(request in arb_request()) {
        let mut icdb = Icdb::new();
        let cold = icdb.request_component(&request).unwrap();
        let warm = icdb.request_component(&request).unwrap();
        prop_assert_ne!(&cold, &warm, "instances get distinct names");

        prop_assert_eq!(fingerprint(&icdb, &cold), fingerprint(&icdb, &warm));

        // CIF output of warm-hit netlists is byte-identical to cold.
        let cif_cold = icdb.cif_layout(&cold).unwrap();
        let cif_warm = icdb.cif_layout(&warm).unwrap();
        prop_assert_eq!(&*cif_cold, &*cif_warm);

        let stats = icdb.cache_stats();
        prop_assert_eq!(stats.result.misses, 1, "first request is cold");
        prop_assert_eq!(stats.result.hits, 1, "second request is warm");
        prop_assert_eq!(stats.result.lookups(), 2, "hits + misses == requests");
    }

    /// Statistics add up over an arbitrary request mix, and every repeat of
    /// an earlier request in the same session is a result-layer hit.
    #[test]
    fn cache_statistics_add_up(requests in proptest::collection::vec(arb_request(), 1..5)) {
        let mut icdb = Icdb::new();
        let mut issued = 0u64;
        for request in &requests {
            icdb.request_component(request).unwrap();
            icdb.request_component(request).unwrap();
            issued += 2;
        }
        let stats = icdb.cache_stats();
        prop_assert_eq!(stats.result.lookups(), issued, "hits + misses == requests");
        prop_assert!(stats.result.hits >= issued / 2, "every repeat is a hit");

        // The same numbers are visible through the relational store layer.
        icdb.publish_cache_stats().unwrap();
        let rows = icdb
            .db
            .query("SELECT hits, misses FROM cache_stats WHERE layer = 'result'")
            .unwrap();
        let hits = rows[0][0].as_int().unwrap() as u64;
        let misses = rows[0][1].as_int().unwrap() as u64;
        prop_assert_eq!(hits + misses, issued);
    }

    /// A warm hit served to a *different session* of the shared service is
    /// identical to solo cold generation: session isolation never changes
    /// payloads, only namespaces.
    #[test]
    fn cross_session_warm_hit_equals_solo_cold(request in arb_request()) {
        let service = IcdbService::shared();
        let primer = service.open_session();
        let reader = service.open_session();
        let primed = primer.request_component(&request).unwrap();
        let warmed = reader.request_component(&request).unwrap();
        prop_assert_eq!(&primed, &warmed, "fresh namespaces name identically");
        let stats = service.cache_stats();
        prop_assert_eq!(stats.result.misses, 1, "primer generated cold");
        prop_assert_eq!(stats.result.hits, 1, "reader was served warm");

        let mut solo = Icdb::new();
        let solo_name = solo.request_component(&request).unwrap();
        prop_assert_eq!(&solo_name, &warmed);
        prop_assert_eq!(
            solo.delay_string(&solo_name).unwrap(),
            reader.delay_string(&warmed).unwrap()
        );
        prop_assert_eq!(
            solo.shape_string(&solo_name).unwrap(),
            reader.shape_string(&warmed).unwrap()
        );
        prop_assert_eq!(
            solo.vhdl_netlist(&solo_name).unwrap(),
            reader.vhdl_netlist(&warmed).unwrap()
        );
        // Warm CIF layouts are byte-identical to solo cold ones too.
        prop_assert_eq!(
            &*solo.cif_layout(&solo_name).unwrap(),
            &*reader.cif_layout(&warmed).unwrap()
        );
    }
}

/// Batch generation equals sequential generation: same names (install order
/// is deterministic) and same per-instance results, for every worker count.
#[test]
fn batch_matches_sequential() {
    let requests: Vec<ComponentRequest> = vec![
        ComponentRequest::by_component("counter").attribute("size", "4"),
        ComponentRequest::by_implementation("ADDER").attribute("size", "6"),
        ComponentRequest::by_implementation("ALU").attribute("size", "3"),
        ComponentRequest::by_component("counter").attribute("size", "4"),
        ComponentRequest::by_implementation("COMPARATOR").attribute("size", "5"),
    ];
    let mut sequential = Icdb::new();
    let seq_names: Vec<String> = requests
        .iter()
        .map(|r| sequential.request_component(r).unwrap())
        .collect();
    for workers in [1, 2, 4] {
        let mut batched = Icdb::new();
        let batch_names = batched
            .request_components_batch(&requests, workers)
            .unwrap();
        assert_eq!(seq_names, batch_names, "workers={workers}");
        for name in &batch_names {
            assert_eq!(
                sequential.delay_string(name).unwrap(),
                batched.delay_string(name).unwrap()
            );
            assert_eq!(
                sequential.vhdl_netlist(name).unwrap(),
                batched.vhdl_netlist(name).unwrap()
            );
        }
    }
}

/// Batch workers read the cache the sequential path filled: a primed
/// request repeated across a parallel batch hits on every worker.
#[test]
fn batch_shares_cache_across_workers() {
    let request = ComponentRequest::by_component("counter").attribute("size", "5");
    let mut icdb = Icdb::new();
    icdb.request_component(&request).unwrap(); // prime (cold miss)
    let requests = vec![request.clone(), request.clone(), request];
    let names = icdb.request_components_batch(&requests, 3).unwrap();
    assert_eq!(names.len(), 3);
    let stats = icdb.cache_stats();
    assert_eq!(stats.result.lookups(), 4);
    assert_eq!(stats.result.misses, 1, "{stats:?}");
    assert_eq!(stats.result.hits, 3, "{stats:?}");
}

/// The `cache_query` CQL command surfaces the counters.
#[test]
fn cache_query_through_cql() {
    use icdb::cql::CqlArg;
    let mut icdb = Icdb::new();
    let request = ComponentRequest::by_component("counter").attribute("size", "4");
    icdb.request_component(&request).unwrap();
    icdb.request_component(&request).unwrap();
    let mut args = vec![
        CqlArg::OutInt(None),
        CqlArg::OutInt(None),
        CqlArg::OutInt(None),
    ];
    icdb.execute(
        "command:cache_query; layer:result; hits:?d; misses:?d; capacity:?d",
        &mut args,
    )
    .unwrap();
    let CqlArg::OutInt(Some(hits)) = args[0] else {
        panic!("no hits")
    };
    let CqlArg::OutInt(Some(misses)) = args[1] else {
        panic!("no misses")
    };
    let CqlArg::OutInt(Some(capacity)) = args[2] else {
        panic!("no capacity")
    };
    assert_eq!(hits, 1);
    assert_eq!(misses, 1);
    assert!(capacity > 0);
}

/// A bounded cache evicts instead of growing, and keeps counting.
#[test]
fn lru_bound_is_respected() {
    let mut icdb = Icdb::new();
    icdb.set_cache_capacity(2);
    for size in 2..8 {
        let request =
            ComponentRequest::by_implementation("ADDER").attribute("size", size.to_string());
        icdb.request_component(&request).unwrap();
    }
    let stats = icdb.cache_stats();
    assert!(stats.result.entries <= 2, "{stats:?}");
    assert!(stats.result.evictions >= 4, "{stats:?}");
    assert_eq!(stats.result.lookups(), 6);
}
