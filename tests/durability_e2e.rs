//! End-to-end durability: a real `icdbd` process with `--data-dir`,
//! driven over TCP, SIGKILLed mid-session, restarted on the same
//! directory — every CQL answer (instance queries, delay strings,
//! exploration over acquired candidates) must be byte-identical to a
//! never-killed server serving the same session.
//!
//! The reconnect path uses the wire protocol's `attach ns<N>` command:
//! namespace creation is journaled, so ids survive the crash and the
//! client resumes its pre-crash namespace.

#![cfg(unix)]

use icdb::cql::CqlArg;
use icdb::net::IcdbClient;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("icdb-durability-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("addr")
        .port()
}

/// A spawned daemon that is SIGKILLed when dropped, so a failing test
/// never leaks a process (a leaked child would also hold the test
/// harness's stdout pipe open and hang `cargo test`).
struct Daemon(Option<Child>);

impl Daemon {
    /// SIGKILL + reap (the crash being tested).
    fn kill(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().expect("SIGKILL icdbd");
            child.wait().expect("reap icdbd");
        }
    }

    /// SIGTERM, then wait for the graceful (checkpointing) exit.
    fn terminate_gracefully(&mut self) {
        let mut child = self.0.take().expect("daemon live");
        unsafe {
            assert_eq!(libc_kill(child.id() as i32, 15), 0);
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                assert!(status.success(), "graceful shutdown failed: {status:?}");
                return;
            }
            assert!(Instant::now() < deadline, "icdbd ignored SIGTERM");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

// The `Daemon` guard kills + reaps in every path (clippy cannot see
// through the wrapper).
#[allow(clippy::zombie_processes)]
fn spawn_icdbd(port: u16, data_dir: &Path) -> Daemon {
    let child = Command::new(env!("CARGO_BIN_EXE_icdbd"))
        .args([
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn icdbd");
    // Wait for the listener.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Daemon(Some(child));
        }
        assert!(Instant::now() < deadline, "icdbd did not come up");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn connect(port: u16) -> IcdbClient {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match IcdbClient::connect(("127.0.0.1", port)) {
            Ok(client) => return client,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("cannot connect to icdbd: {e}"),
        }
    }
}

/// A string-typed CQL exchange: returns the filled output slots (or the
/// error text, which must also match between the two servers).
fn exchange(client: &mut IcdbClient, command: &str, inputs: &[&str], outs: usize) -> Vec<String> {
    let mut args: Vec<CqlArg> = inputs
        .iter()
        .map(|s| CqlArg::InStr((*s).to_string()))
        .collect();
    for _ in 0..outs {
        args.push(CqlArg::OutStr(None));
    }
    match client.execute(command, &mut args) {
        Ok(()) => args
            .iter()
            .filter_map(|a| match a {
                CqlArg::OutStr(v) => Some(v.clone().unwrap_or_default()),
                _ => None,
            })
            .collect(),
        Err(e) => vec![format!("ERR {e}")],
    }
}

/// The mutation workload: acquire knowledge, install components (layout
/// included), run a published exploration over the acquired candidate.
fn mutate(client: &mut IcdbClient) -> Vec<String> {
    let mut log = Vec::new();
    log.extend(exchange(
        client,
        "command:request_component; component_name:counter; attribute:(size:5); \
         clock_width:30; generated_component:?s",
        &[],
        1,
    ));
    log.extend(exchange(
        client,
        "command:insert_component; IIF:%s; component:Counter; function:(INC,TICK); \
         description:acquired-over-tcp; inserted:?s",
        &["NAME: TCP_TICKER; INORDER: A, B; OUTORDER: O; { O = A * B; }"],
        1,
    ));
    log.extend(exchange(
        client,
        "command:request_component; implementation:ADDER; attribute:(size:4); \
         generated_component:?s; CIF_layout:?s",
        &[],
        2,
    ));
    log.extend(exchange(
        client,
        "command:request_component; implementation:TCP_TICKER; generated_component:?s",
        &[],
        1,
    ));
    log.extend(exchange(
        client,
        "command:explore; component:counter; widths:(3,4); strategies:(cheapest); \
         publish:1; winner:?s; table:?s",
        &[],
        2,
    ));
    log
}

/// The query transcript compared byte-for-byte between the recovered and
/// the never-killed server. Every answer flows over TCP.
fn query_transcript(client: &mut IcdbClient) -> Vec<String> {
    let mut t = Vec::new();
    for instance in ["counter$1", "adder$2", "tcp_ticker$3"] {
        t.extend(exchange(
            client,
            "command:instance_query; generated_component:%s; delay:?s; shape_function:?s; \
             area:?s; VHDL_head:?s",
            &[instance],
            4,
        ));
    }
    // The layout generated before the kill must be readable (warm path).
    t.extend(exchange(
        client,
        "command:instance_query; generated_component:%s; CIF_layout:?s",
        &["adder$2"],
        1,
    ));
    // The acquired implementation answers catalog queries…
    let mut args = vec![CqlArg::OutStrList(None)];
    match client.execute(
        "command:component_query; implementation:TCP_TICKER; function:?s[]",
        &mut args,
    ) {
        Ok(()) => {
            if let CqlArg::OutStrList(Some(fns)) = &args[0] {
                t.push(fns.join(","));
            }
        }
        Err(e) => t.push(format!("ERR {e}")),
    }
    // …and exploration over the acquired candidate set (TCP_TICKER is a
    // Counter-typed implementation, so it joins the sweep).
    let mut args = vec![
        CqlArg::OutStr(None),
        CqlArg::OutStrList(None),
        CqlArg::OutStr(None),
    ];
    match client.execute(
        "command:explore; component:counter; widths:(3,4); strategies:(cheapest,fastest); \
         winner:?s; front:?s[]; table:?s",
        &mut args,
    ) {
        Ok(()) => {
            for arg in &args {
                match arg {
                    CqlArg::OutStr(Some(s)) => t.push(s.clone()),
                    CqlArg::OutStrList(Some(v)) => t.push(v.join("\n")),
                    _ => t.push(String::new()),
                }
            }
        }
        Err(e) => t.push(format!("ERR {e}")),
    }
    t
}

#[test]
fn sigkill_recovery_is_byte_identical_to_a_never_killed_server() {
    // --- Flow A: the server that dies. -----------------------------------
    let dir_a = temp_dir("killed");
    let port_a = free_port();
    let mut daemon_a = spawn_icdbd(port_a, &dir_a);
    let mut client_a = connect(port_a);
    let ns_a = client_a.session_ns().expect("greeting carries the ns");
    let mutation_log_a = mutate(&mut client_a);
    // SIGKILL while the connection is still open: the session namespace
    // was never dropped, so recovery must preserve it.
    daemon_a.kill();
    drop(client_a); // the socket is already dead

    // Restart on the same directory; reconnect; re-attach.
    let port_a2 = free_port();
    let mut daemon_a2 = spawn_icdbd(port_a2, &dir_a);
    let mut client_a2 = connect(port_a2);
    client_a2.attach(ns_a).expect("attach recovered namespace");
    // The journal really was replayed (mutations + namespace create).
    let mut args = vec![CqlArg::OutInt(None), CqlArg::OutInt(None)];
    client_a2
        .execute(
            "command:persist; enabled:?d; recovered_events:?d",
            &mut args,
        )
        .expect("persist query");
    assert_eq!(args[0], CqlArg::OutInt(Some(1)));
    let CqlArg::OutInt(Some(recovered)) = args[1] else {
        panic!("no recovered_events");
    };
    assert!(
        recovered >= 6,
        "expected >= 6 replayed events, got {recovered}"
    );
    let transcript_a = query_transcript(&mut client_a2);

    // --- Flow B: the control server that never dies. ---------------------
    let dir_b = temp_dir("control");
    let port_b = free_port();
    let mut daemon_b = spawn_icdbd(port_b, &dir_b);
    let mut client_b = connect(port_b);
    let ns_b = client_b.session_ns().expect("greeting carries the ns");
    let mutation_log_b = mutate(&mut client_b);
    // Same client topology as flow A: a second connection takes over the
    // first one's namespace (the first connection simply goes quiet, like
    // the crashed one did).
    let mut client_b2 = connect(port_b);
    client_b2.attach(ns_b).expect("attach live namespace");
    let transcript_b = query_transcript(&mut client_b2);

    assert_eq!(
        mutation_log_a, mutation_log_b,
        "pre-kill mutations diverged"
    );
    assert_eq!(
        transcript_a, transcript_b,
        "recovered server diverged from the never-killed control"
    );
    // Sanity: the transcript carries real §3.3 content, not empty slots.
    let joined = transcript_a.join("\n");
    assert!(joined.contains("CW "), "delay strings missing: {joined}");
    assert!(joined.contains("Alternative=1"), "shape strings missing");
    assert!(joined.contains("DS 1"), "CIF missing");

    // Tear the survivors down (the Daemon guard reaps them).
    daemon_a2.kill();
    daemon_b.kill();
    drop(client_b);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// A graceful SIGTERM checkpoint leaves a snapshot whose next boot
/// replays zero events and still serves the same instances.
#[test]
fn sigterm_checkpoints_and_boots_without_replay() {
    let dir = temp_dir("sigterm");
    let port = free_port();
    let mut daemon = spawn_icdbd(port, &dir);
    let mut client = connect(port);
    let ns = client.session_ns().expect("greeting carries the ns");
    let log = mutate(&mut client);
    assert!(log.iter().any(|l| l == "counter$1"), "{log:?}");

    // SIGTERM → graceful checkpoint (ExitCode::SUCCESS).
    daemon.terminate_gracefully();

    // The directory now holds a snapshot generation with an empty WAL.
    let port2 = free_port();
    let mut daemon2 = spawn_icdbd(port2, &dir);
    let mut client2 = connect(port2);
    let mut args = vec![
        CqlArg::OutInt(None),
        CqlArg::OutInt(None),
        CqlArg::OutInt(None),
    ];
    client2
        .execute(
            "command:persist; generation:?d; recovered_events:?d; snapshot_bytes:?d",
            &mut args,
        )
        .expect("persist query");
    assert_eq!(args[0], CqlArg::OutInt(Some(1)), "generation rolled");
    assert_eq!(
        args[1],
        CqlArg::OutInt(Some(0)),
        "no replay after checkpoint"
    );
    let CqlArg::OutInt(Some(snapshot_bytes)) = args[2] else {
        panic!("no snapshot size");
    };
    assert!(snapshot_bytes > 0);
    client2.attach(ns).expect("attach checkpointed namespace");
    let t = query_transcript(&mut client2);
    assert!(t.join("\n").contains("CW "));

    daemon2.kill();
    std::fs::remove_dir_all(&dir).ok();
}

extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}
