//! End-to-end failover drill: a real primary `icdbd` and a real follower
//! `icdbd --replicate-from`, driven over TCP. The primary is loaded,
//! the follower catches up (`lag_events` reaches 0 — the documented
//! precondition for lossless failover under asynchronous replication),
//! the primary is SIGKILLed, and the follower is promoted with
//! `persist promote:1`. No acked commit may be lost: the promoted node
//! must serve a read transcript byte-identical to a control primary that
//! ran the same workload and was never killed — and must accept writes.

#![cfg(unix)]

use icdb::cql::CqlArg;
use icdb::net::IcdbClient;
use icdb::IcdbError;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icdb-repl-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("addr")
        .port()
}

/// A spawned daemon, SIGKILLed when dropped so a failing test never
/// leaks a process.
struct Daemon(Option<Child>);

impl Daemon {
    /// SIGKILL + reap — the crash being drilled.
    fn kill(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().expect("SIGKILL icdbd");
            child.wait().expect("reap icdbd");
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

// The `Daemon` guard kills + reaps in every path.
#[allow(clippy::zombie_processes)]
fn spawn_icdbd(port: u16, data_dir: &Path, extra: &[&str]) -> Daemon {
    let mut args = vec![
        "--addr".to_string(),
        format!("127.0.0.1:{port}"),
        "--data-dir".to_string(),
        data_dir.to_str().expect("utf-8 temp path").to_string(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_icdbd"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn icdbd");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Daemon(Some(child));
        }
        assert!(Instant::now() < deadline, "icdbd did not come up");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn connect(port: u16) -> IcdbClient {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match IcdbClient::connect(("127.0.0.1", port)) {
            Ok(client) => return client,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("cannot connect to icdbd: {e}"),
        }
    }
}

fn exchange(client: &mut IcdbClient, command: &str, inputs: &[&str], outs: usize) -> Vec<String> {
    let mut args: Vec<CqlArg> = inputs
        .iter()
        .map(|s| CqlArg::InStr((*s).to_string()))
        .collect();
    for _ in 0..outs {
        args.push(CqlArg::OutStr(None));
    }
    match client.execute(command, &mut args) {
        Ok(()) => args
            .iter()
            .filter_map(|a| match a {
                CqlArg::OutStr(v) => Some(v.clone().unwrap_or_default()),
                _ => None,
            })
            .collect(),
        Err(e) => vec![format!("ERR {e}")],
    }
}

/// Load round 1: knowledge acquisition + two instances (CIF included).
fn load_round_one(client: &mut IcdbClient) -> Vec<String> {
    let mut log = Vec::new();
    log.extend(exchange(
        client,
        "command:request_component; component_name:counter; attribute:(size:4); \
         clock_width:30; generated_component:?s",
        &[],
        1,
    ));
    log.extend(exchange(
        client,
        "command:request_component; implementation:ADDER; attribute:(size:4); \
         generated_component:?s; CIF_layout:?s",
        &[],
        2,
    ));
    log.extend(exchange(
        client,
        "command:insert_component; IIF:%s; component:Counter; function:(INC,TICK); \
         description:acquired-before-failover; inserted:?s",
        &["NAME: FAILOVER_TICKER; INORDER: A, B; OUTORDER: O; { O = A * B; }"],
        1,
    ));
    log
}

/// Load round 2 — the "mid-load" the primary dies under (after the
/// follower has confirmed catch-up).
fn load_round_two(client: &mut IcdbClient) -> Vec<String> {
    let mut log = Vec::new();
    log.extend(exchange(
        client,
        "command:request_component; component_name:counter; attribute:(size:6); \
         clock_width:25; generated_component:?s",
        &[],
        1,
    ));
    log.extend(exchange(
        client,
        "command:request_component; implementation:FAILOVER_TICKER; generated_component:?s",
        &[],
        1,
    ));
    log
}

/// The post-failover write, run identically on the promoted follower and
/// on the control primary.
fn post_failover_write(client: &mut IcdbClient) -> Vec<String> {
    exchange(
        client,
        "command:request_component; implementation:ADDER; attribute:(size:7); \
         generated_component:?s",
        &[],
        1,
    )
}

/// The full read-only transcript compared byte-for-byte.
fn transcript(client: &mut IcdbClient) -> Vec<String> {
    let mut t = Vec::new();
    for instance in ["counter$1", "adder$2", "counter$3", "failover_ticker$4"] {
        t.extend(exchange(
            client,
            "command:instance_query; generated_component:%s; delay:?s; shape_function:?s; \
             area:?s; VHDL_head:?s",
            &[instance],
            4,
        ));
    }
    t.extend(exchange(
        client,
        "command:instance_query; generated_component:%s; CIF_layout:?s",
        &["adder$2"],
        1,
    ));
    t.extend(exchange(
        client,
        "command:explore; component:counter; widths:(4,6); strategies:(cheapest,fastest); \
         winner:?s; table:?s",
        &[],
        2,
    ));
    t
}

/// Polls the node's `persist` surface until it reports the wanted role
/// with zero replication lag (and a positive applied position).
fn await_caught_up(client: &mut IcdbClient, want_role: &str) -> i64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut args = vec![
            CqlArg::OutStr(None),
            CqlArg::OutInt(None),
            CqlArg::OutInt(None),
        ];
        client
            .execute(
                "command:persist; role:?s; applied_seq:?d; lag_events:?d",
                &mut args,
            )
            .expect("persist poll");
        let role = matches!(&args[0], CqlArg::OutStr(Some(r)) if r == want_role);
        let applied = match args[1] {
            CqlArg::OutInt(Some(v)) => v,
            _ => 0,
        };
        let lag = match args[2] {
            CqlArg::OutInt(Some(v)) => v,
            _ => i64::MAX,
        };
        if role && lag == 0 && applied > 0 {
            return applied;
        }
        assert!(
            Instant::now() < deadline,
            "follower never caught up (role ok: {role}, applied {applied}, lag {lag})"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn sigkill_failover_promotes_the_follower_without_losing_acked_commits() {
    // --- The replicated pair. --------------------------------------------
    let dir_p = temp_dir("primary");
    let dir_f = temp_dir("follower");
    let port_p = free_port();
    let port_f = free_port();
    let mut primary = spawn_icdbd(port_p, &dir_p, &[]);
    let mut client = connect(port_p);
    let ns = client.session_ns().expect("greeting carries the ns");
    let log1 = load_round_one(&mut client);

    let follower = spawn_icdbd(
        port_f,
        &dir_f,
        &["--replicate-from", &format!("127.0.0.1:{port_p}")],
    );
    let mut fpoll = connect(port_f);
    assert_eq!(
        fpoll.hello().expect("hello on follower").role,
        "follower",
        "the handshake must expose the role"
    );
    await_caught_up(&mut fpoll, "follower");

    // Mid-load: more acked commits, then confirm the follower holds them
    // all. Asynchronous replication only guarantees lossless failover
    // from a caught-up follower — this wait is the documented runbook
    // step, not test leniency.
    let log2 = load_round_two(&mut client);
    let acked = client.last_commit_seq();
    assert!(acked > 0, "mutations must carry commit acks");

    // Read-your-writes: block until the follower's applied commit counter
    // for this namespace reaches the last *acked* commit. (`lag_events`
    // alone is computed from the follower's last stream reply, so right
    // after a burst it can be honestly stale — wait_seq is the precise
    // per-session fence.)
    let mut fclient = connect(port_f);
    fclient.attach(ns).expect("attach replicated ns");
    let reached = fclient
        .wait_seq(acked, Duration::from_secs(10))
        .expect("follower catches up to the acked commit");
    assert!(reached >= acked);
    let applied = await_caught_up(&mut fpoll, "follower");
    assert!(applied > 0);
    let mut args = vec![CqlArg::OutStr(None)];
    let refused = fclient.execute(
        "command:request_component; implementation:ADDER; attribute:(size:7); \
         generated_component:?s",
        &mut args,
    );
    assert!(
        matches!(refused, Err(IcdbError::NotPrimary(_))),
        "expected NotPrimary before promotion, got {refused:?}"
    );

    // --- The failover. ---------------------------------------------------
    primary.kill();
    drop(client);
    let mut none: Vec<CqlArg> = vec![];
    fclient
        .execute("command:persist; promote:1", &mut none)
        .expect("promote the follower");
    assert_eq!(fclient.hello().expect("hello").role, "primary");
    let log3 = post_failover_write(&mut fclient);
    let transcript_promoted = transcript(&mut fclient);

    // --- The control primary: same workload, never killed. ---------------
    let dir_c = temp_dir("control");
    let port_c = free_port();
    let mut control = spawn_icdbd(port_c, &dir_c, &[]);
    let mut cclient = connect(port_c);
    let clog1 = load_round_one(&mut cclient);
    let clog2 = load_round_two(&mut cclient);
    let clog3 = post_failover_write(&mut cclient);
    let transcript_control = transcript(&mut cclient);

    assert_eq!(log1, clog1, "round-1 mutations diverged");
    assert_eq!(log2, clog2, "round-2 mutations diverged");
    assert_eq!(log3, clog3, "post-failover writes diverged");
    assert_eq!(
        transcript_promoted, transcript_control,
        "promoted follower diverged from the never-killed control"
    );
    // Sanity: real content, not empty slots.
    let joined = transcript_promoted.join("\n");
    assert!(joined.contains("CW "), "delay strings missing: {joined}");
    assert!(joined.contains("Alternative=1"), "shape strings missing");
    assert!(joined.contains("DS 1"), "CIF missing");

    // The promoted node survives its own restart: its journal carried
    // the replicated history plus the post-failover write. SIGKILL while
    // fclient's session is still open — a graceful disconnect would
    // (correctly) drop the session's namespace on the now-primary node.
    let mut promoted = follower;
    promoted.kill();
    drop(fclient);
    drop(fpoll);
    let port_f2 = free_port();
    let mut rebooted = spawn_icdbd(port_f2, &dir_f, &[]);
    let mut rclient = connect(port_f2);
    rclient.attach(ns).expect("attach after reboot");
    assert_eq!(
        transcript(&mut rclient),
        transcript_control,
        "the promoted node's own recovery diverged"
    );

    rebooted.kill();
    control.kill();
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_f).ok();
    std::fs::remove_dir_all(&dir_c).ok();
}
